"""Picasso driver — Algorithm 1 of the paper.

Iteratively: assign random candidate-color lists from a fresh palette,
materialize only the *conflicted* edges, color unconflicted vertices
immediately, list-color the conflict graph (Algorithm 2), and recurse
on whatever stayed uncolored.  Colors are never reused across
iterations (iteration ``l`` draws from ``[(l-1)P, lP)``), so the union
of per-iteration colorings is proper by construction.

The input graph is never stored: a *source* (see
:mod:`repro.core.sources`) answers vectorized edge queries on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import telemetry
from repro.coloring.base import ColoringResult
from repro.coloring.engine import get_engine
from repro.core.analysis import expected_conflict_edges
from repro.core.conflict import build_conflict_graph, build_fused_conflict_state
from repro.core.palette import assign_color_lists, lists_nbytes
from repro.core.params import PicassoParams
from repro.core.sources import ExplicitGraphSource, PauliComplementSource
from repro.device.csr_build import build_conflict_csr
from repro.device.sim import DeviceSim
from repro.graphs.csr import CSRGraph
from repro.graphs.ops import induced_subgraph
from repro.pauli.strings import PauliSet
from repro.resilience.checkpoint import (
    PicassoCheckpoint,
    checkpoint_fingerprint,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.faults import fault_point
from repro.resilience.supervisor import supervised_executor
from repro.util.chunking import num_pairs
from repro.util.rng import as_generator


@dataclass
class IterationStats:
    """Per-iteration telemetry (feeds Figs. 2, 3, 5 and Table V)."""

    iteration: int
    n_active: int
    palette_size: int
    list_size: int
    n_conflict_vertices: int
    n_conflict_edges: int
    n_colored: int
    n_uncolored: int
    assign_s: float
    conflict_build_s: float
    conflict_color_s: float
    peak_bytes: int
    built_on_device: bool | None = None
    color_rounds: int = 1
    color_peak_bytes: int = 0
    #: Sub-buckets of the build/color phases (PR 7 fused pipeline
    #: telemetry).  ``sweep_s`` drains the worker hit stream,
    #: ``assemble_s`` is the CSR build, ``edge_sweep_s`` is the
    #: dispatcher-side degree scan + induced-subgraph relabel — zero on
    #: the fused path, where that work rides the workers' strips.
    sweep_s: float = 0.0
    assemble_s: float = 0.0
    edge_sweep_s: float = 0.0
    fused: bool = False


@dataclass
class PicassoResult(ColoringResult):
    """ColoringResult plus the iteration trace.

    ``telemetry`` carries the merged registry snapshot (dispatcher
    metrics plus every absorbed worker/agent delta) when telemetry was
    enabled for the run, ``None`` otherwise — ready for the exporters
    in :mod:`repro.telemetry.export`.  Write-only observability: the
    snapshot never feeds back into the algorithm, so the coloring is
    bit-identical with it on or off.
    """

    iterations: list[IterationStats] = field(default_factory=list)
    telemetry: dict[str, Any] | None = None

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def max_conflict_edges(self) -> int:
        """``max_l |Ec|`` — the paper's memory-pressure metric (Fig. 2)."""
        if not self.iterations:
            return 0
        return max(s.n_conflict_edges for s in self.iterations)

    def phase_times(self) -> dict[str, float]:
        """Cumulative seconds per phase (Fig. 3 breakdown).

        The three coarse phases are joined by their sub-buckets:
        ``sweep`` / ``assemble`` split ``conflict_graph``, and
        ``edge_sweep`` is the dispatcher-side portion of
        ``conflict_coloring`` that the fused pipeline eliminates.
        """
        return {
            "assignment": sum(s.assign_s for s in self.iterations),
            "conflict_graph": sum(s.conflict_build_s for s in self.iterations),
            "conflict_coloring": sum(s.conflict_color_s for s in self.iterations),
            "sweep": sum(s.sweep_s for s in self.iterations),
            "assemble": sum(s.assemble_s for s in self.iterations),
            "edge_sweep": sum(s.edge_sweep_s for s in self.iterations),
        }


class Picasso:
    """Palette-based memory-efficient graph coloring.

    Parameters
    ----------
    params:
        Algorithm knobs (palette fraction, alpha, ...); defaults to the
        paper's Normal configuration.
    device:
        Optional :class:`DeviceSim`.  When given, conflict graphs are
        built through Algorithm 3 against the device budget (raising
        :class:`DeviceOutOfMemory` exactly where a real 40 GB GPU
        would); otherwise the host path is used.
    seed:
        Seeds list assignment and Algorithm 2's tie-breaking.

    Examples
    --------
    >>> from repro.pauli import random_pauli_set
    >>> ps = random_pauli_set(100, 6, seed=0)
    >>> result = Picasso(seed=1).color(ps)
    >>> result.n_colors <= 100
    True
    """

    def __init__(
        self,
        params: PicassoParams | None = None,
        device: DeviceSim | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.params = params or PicassoParams()
        self.device = device
        self.rng = as_generator(seed)

    # -- public API ------------------------------------------------------

    def color(self, target: PauliSet | CSRGraph) -> PicassoResult:
        """Color a Pauli set (streaming complement) or explicit graph."""
        if isinstance(target, PauliSet):
            source = PauliComplementSource(target)
        elif isinstance(target, CSRGraph):
            source = ExplicitGraphSource(target)
        else:
            raise TypeError(
                f"expected PauliSet or CSRGraph, got {type(target).__name__}"
            )
        return self.color_source(source)

    def color_source(self, source) -> PicassoResult:
        """Algorithm 1 over any edge source."""
        params = self.params
        # One persistent backend for the whole run: the pool (or the
        # cluster connections, when ``hosts`` selects the distributed
        # backend) is created once, the root source is installed into
        # the workers under a payload token on the first sweep, and
        # every later iteration ships only its delta (colmasks + active
        # indices) — workers derive the iteration's subset oracle
        # locally.  We created the executor from a spec, so we own it:
        # the ``finally`` below closes it (worker processes are not
        # leaked on success *or* on a non-convergence raise).  With
        # ``failover``/``max_retries`` set, the backend comes back
        # wrapped in the retry/failover supervisor — same contract,
        # same results, bounded failures recovered instead of raised.
        executor = supervised_executor(
            params.executor, params.n_workers, pin=params.pin_workers,
            hosts=params.hosts, transport=params.transport,
            failover=params.failover, max_retries=params.max_retries,
        )
        # Double-buffered shm regions reused across the run's fused
        # sweeps (instead of create/zero/unlink churn per iteration);
        # run-scoped like the executor, closed with it.
        region_pool = None
        if params.shm_gather and self.device is None and params.resolved_fused():
            from repro.parallel.shm import ShmRegionPool

            region_pool = ShmRegionPool()
        try:
            return self._color_source_with(source, executor, region_pool)
        finally:
            if region_pool is not None:
                region_pool.close()
            executor.close()

    def _color_source_with(
        self, source, executor, region_pool=None
    ) -> PicassoResult:
        params = self.params
        # Telemetry is enable-only here: a run that asks for it turns
        # the process-wide collector on; a run that does not leaves
        # whatever the process (CLI exporters, an enclosing run) chose.
        if params.resolved_telemetry():
            telemetry.enable(True)
        run_telemetry = telemetry.enabled()
        t_start = telemetry.clock()
        # One engine instance for the whole run, from the registry —
        # the pluggable Algorithm 2 seam.  Parallel engines receive the
        # run's persistent executor; payload tokens are channelled, so
        # sweep and coloring installs coexist on one pool.
        color_engine = get_engine(
            params.resolved_color_engine(), **params.color_engine_knobs()
        )
        # One resolved kernel-backend name for the run; workers resolve
        # it against their own runtime (bit-identical by contract).
        kb = params.resolved_kernel_backend()
        n_total = source.n
        colors = np.full(n_total, -1, dtype=np.int64)
        active = np.arange(n_total, dtype=np.int64)
        active_source = source
        base_color = 0
        palette_fraction = params.palette_fraction
        iterations: list[IterationStats] = []
        peak_bytes = 0
        start_iteration = 1
        # Fused iterate: workers pre-sweep conflict vertices and the
        # dispatcher assembles the conflicted sub-CSR directly.  Host
        # path only — the device build owns its own budgeted assembly.
        fused = self.device is None and params.resolved_fused()

        ckpt_dir = params.checkpoint_dir
        fingerprint = (
            checkpoint_fingerprint(params, n_total) if ckpt_dir else None
        )
        if params.resume and ckpt_dir:
            path = latest_checkpoint(ckpt_dir, fingerprint)
            if path is not None:
                # Restore the committed state *and* the RNG stream:
                # the next iteration draws the same candidate lists an
                # uninterrupted run would have, so the resumed tail —
                # and therefore the final coloring — is bit-identical
                # per seed.  The active set is stored as global ids, so
                # the subset is taken from the root source (subset
                # composition makes that equal to the chain of
                # per-iteration subsets the original run held).
                ck = load_checkpoint(path, fingerprint)
                colors = ck.colors
                active = ck.active
                active_source = (
                    source.subset(active) if len(active) < n_total else source
                )
                base_color = ck.base_color
                palette_fraction = ck.palette_fraction
                self.rng.bit_generator.state = ck.rng_state
                iterations = list(ck.iterations)
                peak_bytes = ck.peak_bytes
                start_iteration = ck.iteration + 1

        for it in range(start_iteration, params.max_iterations + 1):
            n = len(active)
            if n == 0:
                break
            palette = max(params.min_palette, round(palette_fraction * n))
            # L = alpha * ln|V| (Table I), capped at the current palette.
            raw_list = max(1, round(params.alpha * np.log(n))) if n > 1 else 1
            list_size = min(raw_list, palette)

            # Line 6: random candidate lists from a fresh palette.
            t0 = telemetry.clock()
            with telemetry.span("picasso.assign", iteration=it):
                col_lists, colmasks = assign_color_lists(
                    n, palette, list_size, self.rng
                )
            t_assign = telemetry.clock() - t0

            # Line 7: conflict graph (only conflicted edges materialize).
            # The tiled engine consumes the source's block oracle when
            # it has one (Pauli sources do; dense tiles then skip the
            # pairwise survivor gather).  The *root* source plus the
            # global active indices ride along so a persistent pool can
            # reuse its installed payload and receive only this
            # iteration's delta; the Lemma 2 expectation sizes the
            # shared-memory gather region when that path is on.
            t0 = telemetry.clock()
            built_on_device: bool | None = None
            edge_block_fn = getattr(active_source, "edge_block", None)
            est_edges = (
                expected_conflict_edges(num_pairs(n), palette, list_size)
                if params.shm_gather
                else None
            )
            active_idx = active if it > 1 else None
            timings: dict[str, float] = {}
            with telemetry.span("picasso.conflict_build", iteration=it):
                if self.device is not None:
                    gc, build_stats = build_conflict_csr(
                        n,
                        active_source.edge_mask,
                        colmasks,
                        self.device,
                        chunk_size=params.chunk_size,
                        engine=params.engine,
                        edge_block_fn=edge_block_fn,
                        tile_bytes=params.tile_budget_bytes,
                        executor=executor,
                        shm=params.shm_gather,
                        est_conflict_edges=est_edges,
                        source=source,
                        active_idx=active_idx,
                        kernel_backend=kb,
                    )
                    n_conf_edges = build_stats.n_conflict_edges
                    built_on_device = build_stats.built_on_device
                elif fused:
                    # Fused iterate: the sweep comes back as
                    # coloring-round state — conflicted vertex ids plus
                    # their sub-CSR — with the edge-level degree scan
                    # already folded into the workers' strips.
                    sub_gc, conflicted, n_conf_edges = (
                        build_fused_conflict_state(
                            n,
                            active_source.edge_mask,
                            colmasks,
                            chunk_size=params.chunk_size,
                            engine=params.engine,
                            edge_block_fn=edge_block_fn,
                            tile_bytes=params.tile_budget_bytes,
                            executor=executor,
                            shm=params.shm_gather,
                            est_conflict_edges=est_edges,
                            source=source,
                            active_idx=active_idx,
                            region_pool=region_pool,
                            timings=timings,
                            kernel_backend=kb,
                        )
                    )
                else:
                    gc, n_conf_edges = build_conflict_graph(
                        n,
                        active_source.edge_mask,
                        colmasks,
                        chunk_size=params.chunk_size,
                        engine=params.engine,
                        edge_block_fn=edge_block_fn,
                        tile_bytes=params.tile_budget_bytes,
                        executor=executor,
                        shm=params.shm_gather,
                        est_conflict_edges=est_edges,
                        source=source,
                        active_idx=active_idx,
                        timings=timings,
                        kernel_backend=kb,
                    )
            t_build = telemetry.clock() - t0

            # Lines 8-9: color unconflicted vertices from their lists,
            # then list-color the conflicted subgraph.
            t0 = telemetry.clock()
            with telemetry.span("picasso.conflict_color", iteration=it):
                local_colors = np.full(n, -1, dtype=np.int64)
                if fused:
                    # The conflicted set is in hand; its complement is
                    # the same ascending id list the degree scan would
                    # produce.
                    umask = np.ones(n, dtype=bool)
                    umask[conflicted] = False
                    unconflicted = np.flatnonzero(umask)
                    graph_nbytes = sub_gc.nbytes + conflicted.nbytes
                else:
                    t_es = telemetry.clock()
                    with telemetry.span("picasso.edge_sweep", iteration=it):
                        degrees = gc.degree()
                        unconflicted = np.nonzero(degrees == 0)[0]
                        conflicted = np.nonzero(degrees > 0)[0]
                        sub_gc = None
                        if len(conflicted):
                            sub_gc, _ = induced_subgraph(gc, conflicted)
                    timings["edge_sweep_s"] = telemetry.clock() - t_es
                    graph_nbytes = gc.nbytes
                local_colors[unconflicted] = col_lists[unconflicted, 0]

                color_rounds = 0
                color_peak = 0
                if len(conflicted):
                    sub_lists = col_lists[conflicted]
                    outcome = color_engine.color(
                        sub_gc, sub_lists, self.rng,
                        executor=executor, device=self.device,
                    )
                    color_rounds = outcome.n_rounds
                    color_peak = outcome.peak_bytes
                    local_colors[conflicted] = outcome.colors
                    vu_local = conflicted[outcome.uncolored]
                else:
                    vu_local = np.empty(0, dtype=np.int64)
            t_color = telemetry.clock() - t0

            # Commit global colors with the per-iteration offset.
            colored_local = np.nonzero(local_colors >= 0)[0]
            colors[active[colored_local]] = (
                base_color + local_colors[colored_local]
            )
            base_color += palette

            # Engine scratch is recorded per iteration (color_peak_bytes)
            # but kept out of the Table IV peak metric, whose definition
            # predates the engine layer — changing it would break the
            # cross-PR memory trajectory.
            # The fused path never holds the full-width graph, so its
            # term is the conflicted sub-CSR plus the vertex ids — the
            # same definition the unfused path converges to after its
            # induced_subgraph, just without the transient full graph.
            iter_peak = (
                active_source.nbytes
                + lists_nbytes(col_lists, colmasks)
                + graph_nbytes
                + colors.nbytes
            )
            peak_bytes = max(peak_bytes, iter_peak)
            iterations.append(
                IterationStats(
                    iteration=it,
                    n_active=n,
                    palette_size=palette,
                    list_size=list_size,
                    n_conflict_vertices=int(len(conflicted)),
                    n_conflict_edges=int(n_conf_edges),
                    n_colored=int(len(colored_local)),
                    n_uncolored=int(len(vu_local)),
                    assign_s=t_assign,
                    conflict_build_s=t_build,
                    conflict_color_s=t_color,
                    peak_bytes=int(iter_peak),
                    built_on_device=built_on_device,
                    color_rounds=color_rounds,
                    color_peak_bytes=int(color_peak),
                    sweep_s=float(timings.get("sweep_s", 0.0)),
                    assemble_s=float(timings.get("assemble_s", 0.0)),
                    edge_sweep_s=float(timings.get("edge_sweep_s", 0.0)),
                    fused=fused,
                )
            )

            if len(vu_local) == 0:
                active = np.empty(0, dtype=np.int64)
                break
            # Stall guard: widen the palette if nothing got colored.
            if len(colored_local) == 0:
                palette_fraction = min(
                    1.0, palette_fraction * params.grow_on_stall
                )
            # Line 11: recurse on the uncolored subproblem.
            active = active[vu_local]
            active_source = active_source.subset(vu_local)
            if ckpt_dir and it % params.checkpoint_every == 0:
                # Snapshot the *post-iteration* committed state — the
                # exact tuple the resume path restores above.
                save_checkpoint(
                    ckpt_dir,
                    PicassoCheckpoint(
                        iteration=it,
                        colors=colors,
                        active=active,
                        base_color=base_color,
                        palette_fraction=palette_fraction,
                        rng_state=self.rng.bit_generator.state,
                        fingerprint=fingerprint,
                        peak_bytes=int(peak_bytes),
                        iterations=iterations,
                    ),
                )
            fault_point("iteration")
        else:
            if len(active):
                raise RuntimeError(
                    f"Picasso did not converge in "
                    f"{params.max_iterations} iterations"
                )

        elapsed = telemetry.clock() - t_start
        return PicassoResult(
            colors=colors,
            algorithm="picasso",
            peak_bytes=int(peak_bytes),
            elapsed_s=elapsed,
            stats={
                "total_palette_colors": base_color,
                "color_rounds": sum(s.color_rounds for s in iterations),
            },
            engine=color_engine.name,
            n_rounds=len(iterations),
            iterations=iterations,
            telemetry=telemetry.snapshot() if run_telemetry else None,
        )


def picasso_color(
    target: PauliSet | CSRGraph,
    params: PicassoParams | None = None,
    device: DeviceSim | None = None,
    seed: int | np.random.Generator | None = None,
) -> PicassoResult:
    """Functional convenience wrapper around :class:`Picasso`."""
    return Picasso(params=params, device=device, seed=seed).color(target)
