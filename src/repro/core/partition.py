"""Unitary partitioning — the application layer over the coloring (§II).

A coloring of the complement graph ``G'`` groups the Pauli strings into
color classes; each class is a clique of the anticommutation graph
``G``, i.e. a set of pairwise-anticommuting strings, which composes
into a single unitary (Eq. 2).  This module turns a
:class:`~repro.coloring.base.ColoringResult` into the compact
representation of Eq. 1:

.. math::  \\sum_i u_i U_i = \\sum_j p_j P_j

For a clique ``{p_j P_j}`` of anticommuting strings the composite

.. math::  U = \\frac{1}{u} \\sum_j p_j P_j,  \\quad  u = \\sqrt{\\sum_j |p_j|^2}

is itself unitary for *real* coefficients: in
``U U† = (1/u^2) Σ_jk p_j p_k* P_j P_k`` the (j, k) and (k, j) cross
terms cancel by anticommutation whenever ``p_j p_k*`` is real, leaving
``(1/u^2) Σ_j |p_j|^2 I = I``.  JW/BK images of Hermitian Hamiltonians
have real coefficients, so this always holds for the chemistry
workloads; complex phases can be absorbed into the strings beforehand
(the standard unitary-partitioning normalization of Izmaylov et al.).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coloring.base import ColoringResult
from repro.pauli.strings import PauliSet


@dataclass
class UnitaryGroup:
    """One clique: member indices, coefficients, composite weight."""

    members: np.ndarray
    coefficient: complex

    @property
    def size(self) -> int:
        return int(len(self.members))


@dataclass
class UnitaryPartition:
    """The compact representation of a Pauli set (Eq. 1)."""

    pauli_set: PauliSet
    groups: list[UnitaryGroup]

    @property
    def n_unitaries(self) -> int:
        return len(self.groups)

    @property
    def compression_ratio(self) -> float:
        """``n / c`` — how many Pauli strings fold into each unitary on
        average (the paper's target: 6-10x for small cases)."""
        if not self.groups:
            return 1.0
        return self.pauli_set.n / self.n_unitaries

    def validate(self) -> bool:
        """Check the partition invariants:

        1. groups partition the index set exactly;
        2. every within-group pair anticommutes (is a clique of G);
        3. composite weights satisfy Eq. 1's norm bookkeeping.
        """
        seen = np.concatenate([g.members for g in self.groups]) if self.groups else np.empty(0, dtype=np.int64)
        if len(seen) != self.pauli_set.n or len(np.unique(seen)) != len(seen):
            return False
        oracle = self.pauli_set.oracle()
        for g in self.groups:
            if g.size < 2:
                continue
            ii, jj = np.triu_indices(g.size, k=1)
            if not oracle.anticommute(g.members[ii], g.members[jj]).all():
                return False
        if self.pauli_set.coefficients is not None:
            for g in self.groups:
                norm = float(
                    np.sqrt(np.sum(np.abs(self.pauli_set.coefficients[g.members]) ** 2))
                )
                if not np.isclose(abs(g.coefficient), norm):
                    return False
        return True

    def summary(self) -> dict:
        """Size statistics for reporting."""
        sizes = np.array([g.size for g in self.groups], dtype=np.int64)
        return {
            "n_pauli": self.pauli_set.n,
            "n_unitaries": self.n_unitaries,
            "compression_ratio": self.compression_ratio,
            "max_group": int(sizes.max()) if len(sizes) else 0,
            "mean_group": float(sizes.mean()) if len(sizes) else 0.0,
            "singletons": int((sizes == 1).sum()),
        }


def partition_from_coloring(
    pauli_set: PauliSet, result: ColoringResult
) -> UnitaryPartition:
    """Assemble the Eq. 1 partition from a complement-graph coloring.

    Composite coefficients are the L2 norms of the member coefficients
    (see module docstring); with no coefficients available each group
    gets weight ``sqrt(size)`` (unit coefficients).
    """
    if result.colors.shape[0] != pauli_set.n:
        raise ValueError("coloring does not match the Pauli set")
    if (result.colors < 0).any():
        raise ValueError("coloring is incomplete (uncolored vertices)")
    groups = []
    for members in result.color_classes():
        members = np.asarray(members, dtype=np.int64)
        if pauli_set.coefficients is not None:
            coeff = complex(
                np.sqrt(np.sum(np.abs(pauli_set.coefficients[members]) ** 2))
            )
        else:
            coeff = complex(np.sqrt(len(members)))
        groups.append(UnitaryGroup(members=members, coefficient=coeff))
    return UnitaryPartition(pauli_set=pauli_set, groups=groups)


def verify_unitarity(
    partition: UnitaryPartition, group_index: int, atol: float = 1e-8
) -> bool:
    """Matrix-level proof for one group: the normalized combination of
    its members is unitary.  Exponential in qubit count — tests and tiny
    demos only."""
    g = partition.groups[group_index]
    ps = partition.pauli_set
    if ps.n_qubits > 10:
        raise MemoryError("verify_unitarity limited to 10 qubits")
    from repro.chemistry.qubit_operator import _PAULI_MATS
    from repro.pauli.encoding import CODE_TO_CHAR

    dim = 2**ps.n_qubits
    acc = np.zeros((dim, dim), dtype=complex)
    coeffs = (
        ps.coefficients[g.members]
        if ps.coefficients is not None
        else np.ones(g.size)
    )
    for row, c in zip(ps.chars[g.members], coeffs):
        m = np.array([[1.0 + 0j]])
        for code in row:
            m = np.kron(m, _PAULI_MATS[str(CODE_TO_CHAR[code])])
        acc += c * m
    acc /= g.coefficient
    return bool(np.allclose(acc @ acc.conj().T, np.eye(dim), atol=atol))
