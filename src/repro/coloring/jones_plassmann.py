"""Jones–Plassmann parallel coloring with LDF priorities (ECL-GC-R analog).

JP colors a maximal independent set of "local maxima" per round: a
vertex whose priority exceeds every *uncolored* neighbor's picks the
smallest color not used by its colored neighbors.  With Largest-Degree-
First priorities (degree, random tie-break) this is the algorithm
underlying ECL-GC (Alabandi & Burtscher), whose shortcutting/reduction
heuristics accelerate convergence without changing the color count —
so the analog reproduces ECL-GC-R's *quality* and round structure.

The simulation is data-parallel over NumPy arrays per round, mirroring
one GPU kernel launch per round.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.coloring.base import ColoringResult, smallest_available_color
from repro.graphs.csr import CSRGraph
from repro.util.rng import as_generator


def jones_plassmann_ldf(
    graph: CSRGraph,
    seed: int | np.random.Generator | None = None,
    max_rounds: int | None = None,
) -> ColoringResult:
    """Color ``graph`` with Jones–Plassmann + LDF priorities.

    Parameters
    ----------
    max_rounds:
        Safety valve; default ``n + 1`` (JP terminates in O(log n)
        expected rounds, far earlier).
    """
    rng = as_generator(seed)
    n = graph.n_vertices
    t0 = telemetry.clock()
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return ColoringResult(colors, "jp-ldf", engine="jp", n_rounds=0)
    # LDF priority: degree first, random tie-break. Encode as a single
    # float key: degree + U(0,1).
    priority = graph.degree().astype(np.float64) + rng.random(n)
    if max_rounds is None:
        max_rounds = n + 1

    # Active arc list: arcs whose endpoints are both uncolored. Arcs
    # with a colored endpoint can never block again, so the list only
    # shrinks — on dense graphs (hundreds of rounds) this is the
    # difference between O(rounds * |E|) and near-linear total work.
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    dst = graph.targets.astype(np.int64)
    rounds = 0
    for _ in range(max_rounds):
        uncolored = colors < 0
        if not uncolored.any():
            break
        rounds += 1
        live = uncolored[src] & uncolored[dst]
        src = src[live]
        dst = dst[live]
        # A vertex is a local max if no uncolored neighbor has higher
        # priority under a strict total order (priority, vertex id).
        blocked = np.zeros(n, dtype=bool)
        lose = (priority[src] < priority[dst]) | (
            (priority[src] == priority[dst]) & (src < dst)
        )
        blocked[src[lose]] = True
        winners = np.nonzero(uncolored & ~blocked)[0]
        # Winners form an independent set in the uncolored subgraph, so
        # they can all pick colors "in parallel" against the colored set.
        for v in winners:
            colors[v] = smallest_available_color(colors[graph.neighbors(v)])
    else:  # pragma: no cover - max_rounds is a safety valve
        raise RuntimeError("jones_plassmann_ldf failed to converge")
    elapsed = telemetry.clock() - t0
    # Memory: CSR + priority + colors + per-round blocked/worklist arrays.
    peak = (
        graph.nbytes + priority.nbytes + colors.nbytes + n + 2 * len(graph.targets)
    )
    return ColoringResult(
        colors=colors,
        algorithm="jp-ldf",
        peak_bytes=int(peak),
        elapsed_s=elapsed,
        engine="jp",
        n_rounds=rounds,
        stats={"rounds": rounds},
    )
