"""Common result type and helpers for coloring algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

# Canonical home is util.bits (one primitive shared with the bitset
# list-coloring engines); re-exported here for the historical import path.
from repro.util.bits import smallest_available_color

__all__ = ["ColoringResult", "smallest_available_color"]


@dataclass
class ColoringResult:
    """Outcome of a coloring run.

    Attributes
    ----------
    colors:
        ``int64[n]`` color per vertex; always a proper coloring on
        return (algorithms raise otherwise).
    algorithm:
        Label, e.g. ``"greedy-DLF"`` or ``"picasso"``.
    peak_bytes:
        Analytic peak of graph + auxiliary structures (Table IV
        accounting).  Zero when not tracked.
    engine:
        Which engine produced the coloring (registry name for list
        coloring, algorithm family otherwise) — uniform provenance so
        Table IV memory benches compare like-for-like.
    n_rounds:
        Synchronous rounds (parallel schemes) or passes; 1 for
        single-sweep sequential algorithms.
    stats:
        Free-form per-algorithm counters (rounds, conflicts, ...).
    """

    colors: np.ndarray
    algorithm: str
    peak_bytes: int = 0
    elapsed_s: float = 0.0
    stats: dict[str, Any] = field(default_factory=dict)
    engine: str = ""
    n_rounds: int = 1

    @property
    def n_colors(self) -> int:
        """Number of distinct colors used."""
        if self.colors.size == 0:
            return 0
        return int(len(np.unique(self.colors[self.colors >= 0])))

    @property
    def n_vertices(self) -> int:
        return int(self.colors.shape[0])

    def color_percentage(self) -> float:
        """Paper metric: ``C / |V| * 100`` — the shrink factor of Pauli
        strings into unitaries."""
        if self.n_vertices == 0:
            return 0.0
        return 100.0 * self.n_colors / self.n_vertices

    def color_classes(self) -> list[np.ndarray]:
        """Vertices grouped by color (the cliques / unitaries of Eq. 1)."""
        order = np.argsort(self.colors, kind="stable")
        sorted_colors = self.colors[order]
        boundaries = np.nonzero(np.diff(sorted_colors))[0] + 1
        return np.split(order, boundaries)
