"""Luby-style maximal-independent-set coloring (paper §III lineage).

The pioneering parallel coloring scheme (Luby 1986): repeatedly extract
a maximal independent set of the uncolored subgraph and give the whole
set a fresh color.  Its O(log n)-round MIS extraction is the ancestor
of Jones–Plassmann; we include it both as a baseline and because ACK's
semi-streaming analysis (the paper's theoretical foundation) names it
as the only prior (Delta+1)-coloring in that model.

Color count is typically worse than JP/greedy (each round burns a whole
color), which is exactly the historical motivation for JP — visible in
the ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.coloring.base import ColoringResult
from repro.graphs.csr import CSRGraph
from repro.util.rng import as_generator


def luby_mis(
    graph: CSRGraph,
    candidates: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One maximal independent set of ``graph`` restricted to
    ``candidates`` (boolean mask), via Luby's random-priority rounds."""
    n = graph.n_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    dst = graph.targets.astype(np.int64)
    in_mis = np.zeros(n, dtype=bool)
    live = candidates.copy()
    # Keep only arcs between live vertices (shrinks every round).
    keep = live[src] & live[dst]
    src, dst = src[keep], dst[keep]
    while live.any():
        prio = rng.random(n)
        # Winners: live vertices beating all live neighbors.
        blocked = np.zeros(n, dtype=bool)
        lose = (prio[src] < prio[dst]) | ((prio[src] == prio[dst]) & (src < dst))
        blocked[src[lose]] = True
        winners = live & ~blocked
        in_mis |= winners
        # Remove winners and their neighbors from the live set.
        dead = winners.copy()
        dead[dst[winners[src]]] = True
        live &= ~dead
        keep = live[src] & live[dst]
        src, dst = src[keep], dst[keep]
    return in_mis


def luby_coloring(
    graph: CSRGraph,
    seed: int | np.random.Generator | None = None,
    max_colors: int | None = None,
) -> ColoringResult:
    """Color by repeated MIS extraction (one fresh color per MIS)."""
    rng = as_generator(seed)
    n = graph.n_vertices
    t0 = telemetry.clock()
    colors = np.full(n, -1, dtype=np.int64)
    if max_colors is None:
        max_colors = n + 1
    uncolored = np.ones(n, dtype=bool)
    color = 0
    while uncolored.any():
        if color >= max_colors:  # pragma: no cover - safety valve
            raise RuntimeError("luby_coloring exceeded max_colors")
        mis = luby_mis(graph, uncolored, rng)
        colors[mis] = color
        uncolored &= ~mis
        color += 1
    elapsed = telemetry.clock() - t0
    peak = graph.nbytes + colors.nbytes + 3 * n + 2 * len(graph.targets) * 8
    return ColoringResult(
        colors=colors,
        algorithm="luby-mis",
        peak_bytes=int(peak),
        elapsed_s=elapsed,
        engine="luby",
        n_rounds=color,
        stats={"rounds": color},
    )
