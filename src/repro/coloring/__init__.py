"""The coloring layer: the engine subsystem plus whole-graph baselines.

Two families live here:

- **List-coloring engines** (the paper's Algorithm 2 and its parallel
  analog) behind the :mod:`repro.coloring.engine` registry —
  ``greedy-dynamic`` / ``sets`` / ``greedy-static`` /
  ``parallel-list`` — selected by the Picasso driver via
  ``PicassoParams(color_engine=...)``.  Serial machinery in
  :mod:`repro.coloring.greedy_list`, the round-synchronous engine in
  :mod:`repro.coloring.parallel_list`.
- **Whole-graph baselines** (paper §III, §VII comparisons):
  :func:`greedy_coloring` (the ColPack analog),
  :func:`jones_plassmann_ldf` (ECL-GC-R),
  :func:`speculative_coloring` (Kokkos-EB), Luby MIS and iterated
  greedy.  All need the explicit graph in memory; their ``peak_bytes``
  expose the Table IV accounting.

Every result carries uniform provenance (``engine``, ``n_rounds``,
``peak_bytes``) so memory and round-count comparisons are
like-for-like.
"""

from repro.coloring.base import ColoringResult, smallest_available_color
from repro.coloring.engine import (
    ListColoringEngine,
    ListColoringOutcome,
    available_engines,
    get_engine,
    register_engine,
)
from repro.coloring.greedy import greedy_coloring
from repro.coloring.greedy_list import (
    greedy_list_color_dynamic,
    greedy_list_color_dynamic_sets,
    greedy_list_color_static,
)
from repro.coloring.jones_plassmann import jones_plassmann_ldf
from repro.coloring.ordering import (
    ALL_ORDERS,
    DYNAMIC_ORDERS,
    STATIC_ORDERS,
    degeneracy,
    largest_first_order,
    natural_order,
    random_order,
    smallest_last_order,
    static_order,
)
from repro.coloring.luby import luby_coloring, luby_mis
from repro.coloring.parallel_list import parallel_list_color
from repro.coloring.recolor import iterated_greedy
from repro.coloring.speculative import speculative_coloring

__all__ = [
    "ColoringResult",
    "smallest_available_color",
    "ListColoringEngine",
    "ListColoringOutcome",
    "available_engines",
    "get_engine",
    "register_engine",
    "greedy_coloring",
    "greedy_list_color_dynamic",
    "greedy_list_color_dynamic_sets",
    "greedy_list_color_static",
    "parallel_list_color",
    "jones_plassmann_ldf",
    "ALL_ORDERS",
    "DYNAMIC_ORDERS",
    "STATIC_ORDERS",
    "degeneracy",
    "largest_first_order",
    "natural_order",
    "random_order",
    "smallest_last_order",
    "static_order",
    "speculative_coloring",
    "luby_coloring",
    "luby_mis",
    "iterated_greedy",
]
