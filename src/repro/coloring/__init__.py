"""Baseline coloring algorithms (paper §III, §VII comparisons).

- :func:`greedy_coloring` — sequential greedy under six orderings
  (the ColPack analog);
- :func:`jones_plassmann_ldf` — JP with LDF priorities (the ECL-GC-R
  analog);
- :func:`speculative_coloring` — edge-based speculative iteration
  (the Kokkos-EB analog).

All baselines require the explicit graph in memory; their
``peak_bytes`` expose the Table IV accounting.
"""

from repro.coloring.base import ColoringResult, smallest_available_color
from repro.coloring.greedy import greedy_coloring
from repro.coloring.jones_plassmann import jones_plassmann_ldf
from repro.coloring.ordering import (
    ALL_ORDERS,
    DYNAMIC_ORDERS,
    STATIC_ORDERS,
    degeneracy,
    largest_first_order,
    natural_order,
    random_order,
    smallest_last_order,
    static_order,
)
from repro.coloring.luby import luby_coloring, luby_mis
from repro.coloring.recolor import iterated_greedy
from repro.coloring.speculative import speculative_coloring

__all__ = [
    "ColoringResult",
    "smallest_available_color",
    "greedy_coloring",
    "jones_plassmann_ldf",
    "ALL_ORDERS",
    "DYNAMIC_ORDERS",
    "STATIC_ORDERS",
    "degeneracy",
    "largest_first_order",
    "natural_order",
    "random_order",
    "smallest_last_order",
    "static_order",
    "speculative_coloring",
    "luby_coloring",
    "luby_mis",
    "iterated_greedy",
]
