"""Round-synchronous parallel *list* coloring (Algorithm 2's parallel analog).

The speculative/Jones–Plassmann scheme of the unconstrained baselines
(:mod:`repro.coloring.speculative`, :mod:`repro.coloring.jones_plassmann`)
lifted to the *list*-coloring problem on the packed ``(n, W)`` uint64
palette bitsets Algorithm 2 already uses:

- **Tentative pick** — every open vertex takes the lowest set bit of
  ``list & ~forbidden`` (its smallest candidate not yet claimed by a
  committed neighbor).  One vectorized pass, no cross-vertex ordering.
- **Conflict sweep** — edge-based, over the live conflict edges: each
  monochrome edge uncolors its lower-priority endpoint (random
  priorities drawn once up front), exactly the Kokkos-EB discipline.
  Survivors commit; losers retry next round against updated forbidden
  bitsets.
- **Vu rollover** — a vertex whose ``list & ~forbidden`` empties joins
  the uncolored set ``Vu`` and rolls into the next Picasso iteration,
  identical in semantics to the greedy engines (``colors == -1``
  exactly on ``Vu``).

Each round is a pure function of the previous round's committed state,
so the result is **deterministic per seed for any worker count** — the
strip partition only changes where rows are computed, never what they
compute.

Rounds dispatch over vertex strips through an
:class:`~repro.parallel.executor.Executor`.  On a persistent pool the
candidate bitsets install once under a ``("color", ...)`` payload token
(its own channel, coexisting with the sweep token) and every later
round ships only the *changed forbidden words* — the same token-cached
delta path the conflict sweep uses for colmasks.  Workers keep a
mutable forbidden copy keyed by the token and apply word deltas
in-place.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro import telemetry
from repro.graphs.csr import CSRGraph
from repro.parallel.executor import Executor, SerialExecutor
from repro.util.bits import bitset_from_lists, lowest_set_bit_rows
from repro.util.rng import as_generator

__all__ = [
    "parallel_list_color",
    "teardown_palette_worker",
]

# Worker-global per-round state, installed by the payload initializer.
_CWORKER: dict = {}

# Worker-global token-keyed palette cache: the static candidate bitsets
# plus the worker's mutable forbidden copy, kept across rounds of one
# coloring run so repeat installs ship only changed words.
_PALETTE_CACHE: dict = {}

# Every coloring run gets a fresh token; never reused, so a stale
# worker cache can never be mistaken for the current run's palette.
_COLOR_TOKENS = itertools.count(1)


def _init_palette_worker(payload: dict) -> None:
    """Install a round payload; apply the forbidden-word delta.

    A payload whose ``static`` part is ``None`` reuses the token-cached
    palette (delta-only install); the worker's forbidden copy then
    receives just the words the dispatcher changed since the last
    install.  Word values are *assigned*, not OR-ed, so replaying a
    full snapshot after a respawn is idempotent.
    """
    from repro.parallel.pool import PayloadNotInstalled

    token = payload["token"]
    static = payload["static"]
    if static is not None:
        _PALETTE_CACHE.clear()
        state = {
            "masks": static["masks"],
            "forbidden": np.zeros_like(static["masks"]),
            "kernel_backend": static.get("kernel_backend"),
        }
        if token is not None:
            _PALETTE_CACHE[token] = state
        # Enable-only, as for the sweep install: under the serial
        # backend this runs in the dispatcher, whose state is
        # authoritative and must not be switched off from a payload.
        if static.get("telemetry"):
            telemetry.enable(True)
    else:
        state = _PALETTE_CACHE.get(token)
        if state is None:
            raise PayloadNotInstalled(
                f"palette token {token!r} not installed in this worker "
                "(respawned after a crash?)"
            )
    rows, words, vals = payload["delta"]
    if len(rows):
        state["forbidden"][rows, words] = vals
    _CWORKER.clear()
    _CWORKER["masks"] = state["masks"]
    _CWORKER["forbidden"] = state["forbidden"]
    _CWORKER["active"] = payload["active"]
    # Worker-side backend resolution, as for the conflict sweep: the
    # payload ships the name, the worker resolves it locally.
    _CWORKER["backend"] = _resolve_backend(state.get("kernel_backend"))


def _resolve_backend(kernel_backend: str | None):
    """Kernel-backend instance for the pick scan (``None`` = direct
    numpy path; import deferred to keep layering lazy)."""
    if kernel_backend is None:
        return None
    from repro.device.backends import resolve_backend

    return resolve_backend(kernel_backend)


def _pick_strip(task: tuple[int, int]) -> np.ndarray:
    """Worker task: tentative picks for one strip of the active rows."""
    start, stop = task
    rows = _CWORKER["active"][start:stop]
    avail = _CWORKER["masks"][rows] & ~_CWORKER["forbidden"][rows]
    backend = _CWORKER.get("backend")
    if backend is not None:
        return backend.lowest_set_bit_rows(avail)
    return lowest_set_bit_rows(avail)


def teardown_palette_worker() -> dict | None:
    """Drop all palette worker state (end of a coloring run).

    Unlike the sweep teardown, the token cache goes too: color tokens
    are per-run, so nothing survives a run by design.  Returns this
    worker's drained telemetry delta (``None`` when telemetry is off or
    in-process) — the teardown broadcast's return values are the
    piggyback channel the dispatcher absorbs."""
    _CWORKER.clear()
    _PALETTE_CACHE.clear()
    return telemetry.drain_worker_snapshot()


def _strip_tasks(m: int, executor: Executor) -> list[tuple[int, int]]:
    """Contiguous strips of the active-row range, a few per worker.

    Heterogeneous backends (hierarchical agents advertising their inner
    pool size) get capacity-weighted strip sizes through the same
    positional-deal principle as the conflict sweep
    (:func:`repro.parallel.pool.strip_shares`): strip ``k`` is sized
    for the slot the ``tasks[k::n]`` deal sends it to.  Round picks are
    pure functions of the committed state, so strip boundaries never
    change the output — weighting is purely a throughput knob.  Empty
    strips stay in place under weighting to keep the deal aligned.
    """
    from repro.parallel.pool import TASKS_PER_WORKER, strip_shares

    n_tasks = max(1, executor.n_workers) * TASKS_PER_WORKER
    shares = strip_shares(executor, n_tasks)
    if shares is None:
        bounds = np.linspace(0, m, n_tasks + 1).astype(np.int64)
        return [
            (int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a
        ]
    csum = np.cumsum(np.asarray(shares, dtype=np.int64))
    bounds = np.concatenate(
        ([0], (m * csum) // int(csum[-1]))
    ).astype(np.int64)
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]


def parallel_list_color(
    gc: CSRGraph,
    col_lists: np.ndarray,
    rng: np.random.Generator | int | None = None,
    executor: Executor | None = None,
    max_rounds: int | None = None,
    kernel_backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray, dict]:
    """Round-synchronous speculative list coloring.

    Parameters
    ----------
    gc:
        Conflict graph (local vertex ids ``0..n-1``).
    col_lists:
        ``(n, L)`` candidate color ids; negative entries are padding.
    rng:
        Draws the conflict-resolution priorities (one permutation, up
        front — the only randomness, so output is deterministic per
        seed for any worker count).
    executor:
        Optional backend.  ``None`` / :class:`SerialExecutor` run the
        rounds in-process; a pool dispatches each round's picks over
        vertex strips with the token-cached forbidden-word delta.
    max_rounds:
        Safety valve; every round commits at least one vertex (the
        globally highest-priority tentative never loses), so ``n + 1``
        is a true upper bound.
    kernel_backend:
        Optional kernel-backend *name* for the lowest-set-bit pick scan
        (see :mod:`repro.device.backends`).  ``None`` runs the direct
        numpy kernel; a name is resolved in-process for serial rounds
        and worker-side for pool rounds.  Backends are bit-identical,
        so this never changes the coloring.

    Returns
    -------
    (colors, uncolored, info):
        As the greedy engines, plus ``info`` with ``n_rounds``,
        ``n_conflicts`` and the analytic ``peak_bytes``.
    """
    rng = as_generator(rng)
    n = gc.n_vertices
    col_lists = np.asarray(col_lists, dtype=np.int64)
    if col_lists.shape[0] != n:
        raise ValueError("col_lists rows must match vertex count")
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors, np.empty(0, dtype=np.int64), {
            "n_rounds": 0, "n_conflicts": 0, "peak_bytes": 0,
        }

    nbits = int(col_lists.max()) + 1 if col_lists.size else 1
    masks = bitset_from_lists(col_lists, max(nbits, 1))
    forbidden = np.zeros_like(masks)
    # Random priorities resolve same-round conflicts symmetrically —
    # drawn before anything else so the rng consumption is fixed.
    priority = rng.permutation(n)

    edges = gc.edges()
    eu = edges[:, 0].astype(np.int64)
    ev = edges[:, 1].astype(np.int64)
    # Analytic peak: palette + forbidden bitsets, the resident edge
    # list, priorities, colors/tentative, plus the CSR itself (the
    # edge-based sweep is the memory-hungry half of the trade, exactly
    # as for the Kokkos-EB baseline).
    peak_bytes = int(
        2 * masks.nbytes
        + eu.nbytes + ev.nbytes
        + priority.nbytes
        + 2 * colors.nbytes
        + gc.nbytes
        + n  # vu mask
    )

    vu_mask = np.zeros(n, dtype=bool)
    use_pool = executor is not None and not isinstance(executor, SerialExecutor)
    token = ("color", next(_COLOR_TOKENS)) if use_pool else None
    nwords = masks.shape[1]
    # (row, word) pairs changed since the last successful install,
    # as flat indices row * W + word (dedupe is one np.unique).
    pending_flat: list[np.ndarray] = []

    def _delta(full: bool) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if full:
            rows, words = np.nonzero(forbidden)
        elif pending_flat:
            flat = np.unique(np.concatenate(pending_flat))
            rows, words = flat // nwords, flat % nwords
        else:
            rows = words = np.empty(0, dtype=np.int64)
        return rows, words, forbidden[rows, words]

    local_backend = _resolve_backend(kernel_backend) if not use_pool else None

    def _round_picks(active: np.ndarray) -> np.ndarray:
        if not use_pool:
            avail = masks[active] & ~forbidden[active]
            if local_backend is not None:
                return local_backend.lowest_set_bit_rows(avail)
            return lowest_set_bit_rows(avail)
        from repro.parallel.pool import imap_delta_install

        tasks = _strip_tasks(len(active), executor)

        def make_payload(force_full: bool):
            full = force_full or not executor.holds_token(token)
            static = (
                {
                    "masks": masks,
                    "kernel_backend": kernel_backend,
                    "telemetry": telemetry.enabled(),
                }
                if full else None
            )
            telemetry.count(
                "color.install.delta" if static is None
                else "color.install.full"
            )
            payload = {
                "token": token,
                "static": static,
                "delta": _delta(full),
                "active": active,
            }
            return payload, token, full

        chunks = list(imap_delta_install(
            executor, _pick_strip, tasks, _init_palette_worker, make_payload
        ))
        pending_flat.clear()
        return np.concatenate(chunks)

    n_conflicts = 0
    rounds = 0
    if max_rounds is None:
        max_rounds = n + 1
    try:
        for _ in range(max_rounds):
            active = np.flatnonzero((colors < 0) & ~vu_mask)
            if active.size == 0:
                break
            rounds += 1
            picks = _round_picks(active)

            # Vu rollover: lists fully claimed by committed neighbors.
            vu_mask[active[picks < 0]] = True

            tentative = np.full(n, -1, dtype=np.int64)
            tentative[active] = picks
            # Edge-based conflict sweep: monochrome edges lose their
            # lower-priority endpoint (cross-round conflicts cannot
            # happen — forbidden already excludes committed colors).
            if eu.size:
                bad = (tentative[eu] >= 0) & (tentative[eu] == tentative[ev])
                losers = np.where(
                    priority[eu[bad]] < priority[ev[bad]], eu[bad], ev[bad]
                )
                n_conflicts += int(losers.size)
                tentative[losers] = -1
            committed = np.flatnonzero(tentative >= 0)
            colors[committed] = tentative[committed]

            if eu.size and committed.size:
                just = np.zeros(n, dtype=bool)
                just[committed] = True
                open_ = (colors < 0) & ~vu_mask
                # Commit fan-out: every open neighbor of a newly
                # committed vertex loses that color from its palette.
                for a, b in ((eu, ev), (ev, eu)):
                    sel = just[a] & open_[b]
                    if sel.any():
                        rows = b[sel]
                        cols = colors[a[sel]]
                        words = cols >> 6
                        bits = np.uint64(1) << (cols & 63).astype(np.uint64)
                        np.bitwise_or.at(forbidden, (rows, words), bits)
                        if use_pool:
                            # Delta tracking feeds the next round's
                            # worker install; pointless off-pool.
                            pending_flat.append(rows * nwords + words)
                # Arcs with a resolved endpoint (committed or Vu) can
                # never conflict again — the live list only shrinks.
                live = open_[eu] & open_[ev]
                eu, ev = eu[live], ev[live]
        else:  # pragma: no cover - max_rounds is a safety valve
            raise RuntimeError("parallel_list_color failed to converge")
    finally:
        if use_pool:
            telemetry.absorb_snapshots(
                executor.finalize(teardown_palette_worker),
                prefix=getattr(executor, "telemetry_prefix", "w"),
            )

    info = {
        "n_rounds": rounds,
        "n_conflicts": n_conflicts,
        "peak_bytes": peak_bytes,
    }
    return colors, np.flatnonzero(vu_mask), info
