"""Sequential greedy coloring with static and dynamic orders (ColPack).

Greedy assigns each vertex the smallest color absent from its already-
colored neighborhood.  Worst case ``Δ + 1`` colors; in practice quality
tracks the ordering heuristic (the paper's Table III finds DLF best).

This is one of the memory-hungry baselines: it needs the explicit
graph (CSR) resident, plus a forbidden-color scratch array — exactly
the structures whose bytes Table IV accounts.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.coloring.base import ColoringResult, smallest_available_color
from repro.coloring.ordering import ALL_ORDERS, DYNAMIC_ORDERS, static_order
from repro.graphs.csr import CSRGraph


def greedy_coloring(
    graph: CSRGraph,
    order: str = "natural",
    seed: int | np.random.Generator | None = None,
) -> ColoringResult:
    """Greedy coloring under any of the six orderings of paper §III.

    Parameters
    ----------
    graph:
        Explicit CSR graph (for Pauli workloads: the *complement* graph).
    order:
        One of ``natural, random, lf, sl, dlf, id``.
    seed:
        Only used by ``random``.
    """
    if order not in ALL_ORDERS:
        raise ValueError(f"unknown order {order!r}; expected one of {ALL_ORDERS}")
    t0 = telemetry.clock()
    if order in DYNAMIC_ORDERS:
        colors = (
            _greedy_dlf(graph) if order == "dlf" else _greedy_incidence(graph)
        )
    else:
        perm = static_order(graph, order, seed)
        colors = _greedy_static(graph, perm)
    elapsed = telemetry.clock() - t0
    peak = graph.nbytes + colors.nbytes + 8 * graph.n_vertices  # scratch
    return ColoringResult(
        colors=colors,
        algorithm=f"greedy-{order.upper()}",
        peak_bytes=int(peak),
        elapsed_s=elapsed,
        engine="greedy",
        n_rounds=1,
    )


def _greedy_static(graph: CSRGraph, perm: np.ndarray) -> np.ndarray:
    colors = np.full(graph.n_vertices, -1, dtype=np.int64)
    for v in perm:
        colors[v] = smallest_available_color(colors[graph.neighbors(v)])
    return colors


def _greedy_dlf(graph: CSRGraph) -> np.ndarray:
    """Dynamic Largest degree First.

    Maintains degrees in the uncolored subgraph with a bucket queue
    (mirroring SL but popping from the *highest* bucket).
    """
    n = graph.n_vertices
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    deg = graph.degree().copy()
    max_deg = int(deg.max())
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[deg[v]].append(v)
    cursor = max_deg
    for _ in range(n):
        while True:
            while cursor >= 0 and not buckets[cursor]:
                cursor -= 1
            v = buckets[cursor].pop()
            if colors[v] < 0 and deg[v] == cursor:
                break
        colors[v] = smallest_available_color(colors[graph.neighbors(v)])
        for u in graph.neighbors(v):
            if colors[u] < 0:
                deg[u] -= 1
                buckets[deg[u]].append(u)
        # Uncolored degrees only decrease, so re-inserted vertices land
        # at or below the cursor and the downward scan stays valid.
    return colors


def _greedy_incidence(graph: CSRGraph) -> np.ndarray:
    """Incidence Degree: color the vertex with most colored neighbors.

    Incidence counts only grow, so a bucket queue over counts with a
    monotone-from-above cursor per step is still near-linear.
    """
    n = graph.n_vertices
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    static_deg = graph.degree()
    inc = np.zeros(n, dtype=np.int64)
    max_inc = int(static_deg.max()) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_inc + 1)]
    # Seed: all have incidence 0; tie-break by static degree by pushing
    # in ascending-degree order (stack pops the largest degree first).
    for v in np.argsort(static_deg, kind="stable"):
        buckets[0].append(int(v))
    # `top` tracks the highest non-empty bucket; coloring a vertex can
    # raise neighbor incidences by one, so `top` moves up by at most one
    # per neighbor update and scans down past emptied buckets.
    top = 0
    for _ in range(n):
        while True:
            while top >= 0 and not buckets[top]:
                top -= 1
            v = buckets[top].pop()
            if colors[v] < 0 and inc[v] == top:
                break
        colors[v] = smallest_available_color(colors[graph.neighbors(v)])
        for u in graph.neighbors(v):
            if colors[u] < 0:
                inc[u] += 1
                buckets[inc[u]].append(u)
                if inc[u] > top:
                    top = int(inc[u])
    return colors
