"""Vertex-ordering heuristics for greedy coloring (ColPack analog).

Static orders return a permutation up-front; the two dynamic schemes
(DLF, ID) are driven by the evolving coloring state and therefore live
inside :mod:`repro.coloring.greedy` — this module provides their
priority machinery.

Implemented orders (Gebremedhin–Manne–Pothen survey, paper §III):

- ``natural``: input order;
- ``random``: uniform permutation;
- ``lf`` (Largest degree First): static degree, descending;
- ``sl`` (Smallest degree Last): degeneracy order — repeatedly remove a
  minimum-degree vertex, color in reverse removal order;
- ``dlf`` (Dynamic Largest degree First): at each step color an
  uncolored vertex with maximum degree *in the uncolored subgraph*;
- ``id`` (Incidence Degree): color a vertex with the maximum number of
  already-colored neighbors (ties by static degree).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.util.rng import as_generator

STATIC_ORDERS = ("natural", "random", "lf", "sl")
DYNAMIC_ORDERS = ("dlf", "id")
ALL_ORDERS = STATIC_ORDERS + DYNAMIC_ORDERS


def natural_order(graph: CSRGraph) -> np.ndarray:
    return np.arange(graph.n_vertices, dtype=np.int64)


def random_order(
    graph: CSRGraph, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    return as_generator(seed).permutation(graph.n_vertices).astype(np.int64)


def largest_first_order(graph: CSRGraph) -> np.ndarray:
    """LF: static degrees descending (stable for determinism)."""
    deg = graph.degree()
    return np.argsort(-deg, kind="stable").astype(np.int64)


def smallest_last_order(graph: CSRGraph) -> np.ndarray:
    """SL: degeneracy ordering via a bucket queue, O(V + E).

    The returned permutation is the *coloring* order (reverse removal
    order), which guarantees at most ``degeneracy + 1`` colors.
    """
    n = graph.n_vertices
    deg = graph.degree().copy()
    removed = np.zeros(n, dtype=bool)
    # Bucket queue over current degrees.
    max_deg = int(deg.max()) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[deg[v]].append(v)
    order = np.empty(n, dtype=np.int64)
    cursor = 0  # lowest possibly-non-empty bucket
    for pos in range(n):
        # Find the lowest non-empty bucket holding a live vertex.  A
        # vertex may appear in stale buckets; skip entries whose stored
        # degree no longer matches.
        while True:
            while cursor <= max_deg and not buckets[cursor]:
                cursor += 1
            v = buckets[cursor].pop()
            if not removed[v] and deg[v] == cursor:
                break
        removed[v] = True
        order[n - 1 - pos] = v
        for u in graph.neighbors(v):
            if not removed[u]:
                deg[u] -= 1
                buckets[deg[u]].append(u)
                if deg[u] < cursor:
                    cursor = deg[u]
    return order


def static_order(
    graph: CSRGraph, name: str, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Dispatch for the static orderings."""
    if name == "natural":
        return natural_order(graph)
    if name == "random":
        return random_order(graph, seed)
    if name == "lf":
        return largest_first_order(graph)
    if name == "sl":
        return smallest_last_order(graph)
    raise ValueError(
        f"unknown static order {name!r}; expected one of {STATIC_ORDERS}"
    )


def degeneracy(graph: CSRGraph) -> int:
    """Graph degeneracy (max over the SL removal sequence of the degree
    at removal time) — an upper-bound witness for SL coloring quality."""
    n = graph.n_vertices
    if n == 0:
        return 0
    deg = graph.degree().copy()
    removed = np.zeros(n, dtype=bool)
    max_deg = int(deg.max())
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[deg[v]].append(v)
    best = 0
    cursor = 0
    for _ in range(n):
        while True:
            while cursor <= max_deg and not buckets[cursor]:
                cursor += 1
            v = buckets[cursor].pop()
            if not removed[v] and deg[v] == cursor:
                break
        removed[v] = True
        best = max(best, cursor)
        for u in graph.neighbors(v):
            if not removed[u]:
                deg[u] -= 1
                buckets[deg[u]].append(u)
                if deg[u] < cursor:
                    cursor = deg[u]
    return best
