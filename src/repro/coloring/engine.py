"""Unified coloring-engine subsystem: one interface, a registry, four engines.

Algorithm 2 (list coloring of the conflict graph) used to be hard-wired
into the Picasso driver, with the round-synchronous parallel analogs
stranded in a disconnected baseline layer.  This module collapses the
two layers into one pluggable seam:

- :class:`ListColoringEngine` — the interface every engine implements:
  ``color(gc, col_lists, rng, executor=None, device=None)`` returning a
  :class:`ListColoringOutcome` with uniform provenance (``engine``,
  ``n_rounds``, ``peak_bytes``).
- A **registry** (:func:`register_engine` / :func:`get_engine` /
  :func:`available_engines`) keyed by engine name, threaded through
  ``PicassoParams(color_engine=...)``, the semi-streaming driver, the
  CLI and the benches.

Engines:

======================  =====================================================
``greedy-dynamic``      Algorithm 2 on packed bitsets with bucket queues
                        (the paper's choice; serial, best quality)
``sets``                the Python-``set`` reference implementation —
                        bit-identical to ``greedy-dynamic`` per seed
``greedy-static``       fixed-order list coloring (``order`` knob:
                        natural / random / lf) — the §IV-B ablation
``parallel-list``       round-synchronous speculative/JP list coloring on
                        the executor/shm substrate
                        (:mod:`repro.coloring.parallel_list`)
======================  =====================================================

Every engine charges its palette scratch to a :class:`DeviceSim` when
one is passed (named ``color_scratch`` allocation), so Algorithm 2
memory lands in the same ledger as the conflict build's buffers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.coloring.greedy_list import (
    greedy_list_color_dynamic,
    greedy_list_color_dynamic_sets,
    greedy_list_color_static,
)
from repro.coloring.parallel_list import parallel_list_color
from repro.graphs.csr import CSRGraph

if TYPE_CHECKING:
    from repro.device.sim import DeviceSim
    from repro.parallel.executor import Executor

__all__ = [
    "ListColoringOutcome",
    "ListColoringEngine",
    "register_engine",
    "get_engine",
    "available_engines",
]


@dataclass
class ListColoringOutcome:
    """Uniform result of one list-coloring run.

    ``colors`` holds a local palette id per vertex (-1 exactly on
    ``uncolored`` — the rollover set ``Vu``); provenance fields are
    populated by every engine so memory/round comparisons are
    like-for-like.
    """

    colors: np.ndarray
    uncolored: np.ndarray
    engine: str
    n_rounds: int = 1
    peak_bytes: int = 0
    stats: dict[str, Any] = field(default_factory=dict)


class ListColoringEngine(ABC):
    """Interface of the pluggable Algorithm 2 implementations."""

    #: Registry name (set by subclasses).
    name: str = ""

    #: Whether the engine dispatches rounds over a pool executor.
    parallel: bool = False

    @abstractmethod
    def color(
        self,
        gc: CSRGraph,
        col_lists: np.ndarray,
        rng: np.random.Generator | int | None = None,
        executor: Executor | None = None,
        device: DeviceSim | None = None,
    ) -> ListColoringOutcome:
        """List-color ``gc`` from ``col_lists``.

        ``executor`` is consumed by parallel engines (serial engines
        ignore it — uniform call site in the driver); ``device``, when
        given, receives the engine's palette scratch as a named
        allocation.
        """

    def _scratch(
        self, device: DeviceSim | None, nbytes: int
    ) -> AbstractContextManager[Any]:
        """Charge palette scratch to the device ledger for the run."""
        if device is None:
            return nullcontext()
        return device.scratch("color_scratch", int(nbytes))

    @staticmethod
    def _masks_nbytes(col_lists: np.ndarray) -> int:
        """Bytes of one packed ``(n, W)`` candidate bitset matrix."""
        col_lists = np.asarray(col_lists)
        if col_lists.size == 0:
            return 0
        nbits = max(int(col_lists.max()) + 1, 1)
        return col_lists.shape[0] * ((nbits + 63) // 64) * 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, type[ListColoringEngine]] = {}


def register_engine(cls: type[ListColoringEngine]) -> type[ListColoringEngine]:
    """Class decorator: add an engine to the registry under ``cls.name``."""
    if not cls.name:
        raise ValueError("engine class must define a non-empty name")
    if cls.name in _REGISTRY:
        raise ValueError(f"engine {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def available_engines() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_engine(name: str, **knobs: Any) -> ListColoringEngine:
    """Instantiate a registered engine with engine-specific knobs.

    Unknown knobs are rejected by the engine constructor, unknown names
    here — with the available set in the message.
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown coloring engine {name!r}; "
            f"available: {available_engines()}"
        )
    return cls(**knobs)


@register_engine
class GreedyDynamicEngine(ListColoringEngine):
    """Algorithm 2 on packed bitsets (most-constrained-first buckets)."""

    name = "greedy-dynamic"

    def color(
        self,
        gc: CSRGraph,
        col_lists: np.ndarray,
        rng: np.random.Generator | int | None = None,
        executor: Executor | None = None,
        device: DeviceSim | None = None,
    ) -> ListColoringOutcome:
        masks_nbytes = self._masks_nbytes(col_lists)
        # Masks + sizes/pos/bucket int arrays (~3 words per vertex).
        scratch = masks_nbytes + 3 * gc.n_vertices * 8
        with self._scratch(device, scratch):
            colors, vu = greedy_list_color_dynamic(gc, col_lists, rng)
        peak = gc.nbytes + scratch + colors.nbytes
        return ListColoringOutcome(
            colors=colors, uncolored=vu, engine=self.name,
            n_rounds=1, peak_bytes=int(peak),
        )


@register_engine
class GreedySetsEngine(ListColoringEngine):
    """The Python-``set`` Algorithm 2 reference (seeded-equivalence)."""

    name = "sets"

    def color(
        self,
        gc: CSRGraph,
        col_lists: np.ndarray,
        rng: np.random.Generator | int | None = None,
        executor: Executor | None = None,
        device: DeviceSim | None = None,
    ) -> ListColoringOutcome:
        col_lists = np.asarray(col_lists)
        # Python sets cost far more than packed words; charge the
        # classic ~64 B/entry estimate so the ledger reflects why the
        # bitset engine replaced this one.
        scratch = int(col_lists.size) * 64 + 3 * gc.n_vertices * 8
        with self._scratch(device, scratch):
            colors, vu = greedy_list_color_dynamic_sets(gc, col_lists, rng)
        peak = gc.nbytes + scratch + colors.nbytes
        return ListColoringOutcome(
            colors=colors, uncolored=vu, engine=self.name,
            n_rounds=1, peak_bytes=int(peak),
        )


@register_engine
class GreedyStaticEngine(ListColoringEngine):
    """Fixed-order list coloring (§IV-B static order schemes)."""

    name = "greedy-static"

    def __init__(self, order: str = "natural") -> None:
        self.order = order

    def color(
        self,
        gc: CSRGraph,
        col_lists: np.ndarray,
        rng: np.random.Generator | int | None = None,
        executor: Executor | None = None,
        device: DeviceSim | None = None,
    ) -> ListColoringOutcome:
        scratch = 2 * gc.n_vertices * 8  # perm + taken-colors scratch
        with self._scratch(device, scratch):
            colors, vu = greedy_list_color_static(
                gc, col_lists, self.order, rng
            )
        peak = gc.nbytes + scratch + colors.nbytes
        return ListColoringOutcome(
            colors=colors, uncolored=vu, engine=self.name,
            n_rounds=1, peak_bytes=int(peak),
            stats={"order": self.order},
        )


@register_engine
class ParallelListEngine(ListColoringEngine):
    """Round-synchronous speculative list coloring over the executor
    substrate (:mod:`repro.coloring.parallel_list`)."""

    name = "parallel-list"
    parallel = True

    def __init__(
        self,
        max_rounds: int | None = None,
        kernel_backend: str | None = None,
    ) -> None:
        self.max_rounds = max_rounds
        self.kernel_backend = kernel_backend

    def color(
        self,
        gc: CSRGraph,
        col_lists: np.ndarray,
        rng: np.random.Generator | int | None = None,
        executor: Executor | None = None,
        device: DeviceSim | None = None,
    ) -> ListColoringOutcome:
        # Candidate + forbidden bitsets, both resident for the run.
        scratch = 2 * self._masks_nbytes(col_lists) + 3 * gc.n_vertices * 8
        with self._scratch(device, scratch):
            colors, vu, info = parallel_list_color(
                gc, col_lists, rng,
                executor=executor, max_rounds=self.max_rounds,
                kernel_backend=self.kernel_backend,
            )
        return ListColoringOutcome(
            colors=colors, uncolored=vu, engine=self.name,
            n_rounds=info["n_rounds"], peak_bytes=info["peak_bytes"],
            stats={"n_conflicts": info["n_conflicts"]},
        )
