"""Iterated-greedy recoloring (Culberson-style quality improver).

Re-running greedy with the vertices grouped by their current color
classes can never increase the color count and frequently decreases it
(each class stays an independent set, so its members may only inherit
colors of earlier classes).  Class orders cycled per round: reverse,
largest-class-first, random.

This is a post-processing ablation: the paper leaves coloring quality
to parameter choice, and this pass quantifies how much a cheap
classical cleanup adds on top of any base algorithm.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.coloring.base import ColoringResult, smallest_available_color
from repro.graphs.csr import CSRGraph
from repro.util.rng import as_generator


def _greedy_in_order(graph: CSRGraph, perm: np.ndarray) -> np.ndarray:
    colors = np.full(graph.n_vertices, -1, dtype=np.int64)
    for v in perm:
        colors[v] = smallest_available_color(colors[graph.neighbors(v)])
    return colors


def _class_order(colors: np.ndarray, class_perm: np.ndarray) -> np.ndarray:
    """Vertex permutation visiting color classes in ``class_perm`` order."""
    out = []
    for c in class_perm:
        out.append(np.nonzero(colors == c)[0])
    return np.concatenate(out)


def iterated_greedy(
    graph: CSRGraph,
    initial: ColoringResult,
    rounds: int = 10,
    seed: int | np.random.Generator | None = None,
) -> ColoringResult:
    """Improve ``initial`` by class-ordered greedy passes.

    Parameters
    ----------
    rounds:
        Recoloring passes; class order cycles reverse ->
        largest-first -> random.

    Returns
    -------
    A :class:`ColoringResult` with ``n_colors <= initial.n_colors``
    (monotonicity is guaranteed and asserted).
    """
    rng = as_generator(seed)
    t0 = telemetry.clock()
    colors = initial.colors.copy()
    if (colors < 0).any():
        raise ValueError("initial coloring is incomplete")
    best = int(len(np.unique(colors)))
    for r in range(rounds):
        # Compact color ids so class enumeration stays dense.
        _, colors = np.unique(colors, return_inverse=True)
        k = int(colors.max()) + 1
        if r % 3 == 0:
            class_perm = np.arange(k)[::-1]
        elif r % 3 == 1:
            sizes = np.bincount(colors, minlength=k)
            class_perm = np.argsort(-sizes, kind="stable")
        else:
            class_perm = rng.permutation(k)
        perm = _class_order(colors, class_perm)
        new_colors = _greedy_in_order(graph, perm)
        new_k = int(new_colors.max()) + 1
        if new_k > best:  # pragma: no cover - theory says impossible
            raise AssertionError("iterated greedy increased the color count")
        colors = new_colors
        best = new_k
    elapsed = telemetry.clock() - t0
    return ColoringResult(
        colors=colors,
        algorithm=f"{initial.algorithm}+ig",
        peak_bytes=initial.peak_bytes,
        elapsed_s=initial.elapsed_s + elapsed,
        engine=initial.engine or "greedy",
        n_rounds=rounds,
        stats={**initial.stats, "ig_rounds": rounds, "ig_final": best},
    )
