"""Speculative iterative coloring (Kokkos-EB analog).

The edge-based speculative scheme of Deveci et al. / Bogle et al.
(kokkos-kernels' ``COLORING_EB``): every uncolored vertex tentatively
takes the smallest color not *currently* forbidden; a conflict-
detection sweep over the **edge list** then uncolors the lower-priority
endpoint of every monochrome edge, and the loop repeats.

Edge-based conflict detection is why Kokkos-EB is the fastest *and* the
most memory-hungry baseline in the paper (Table IV, Fig. 4): it keeps a
full edge list plus per-vertex forbidden bitmaps resident.  The analog
reproduces both behaviours: rounds are whole-array NumPy operations
(one kernel launch each) and ``peak_bytes`` counts the same structures.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.coloring.base import ColoringResult, smallest_available_color
from repro.graphs.csr import CSRGraph
from repro.util.rng import as_generator


def speculative_coloring(
    graph: CSRGraph,
    seed: int | np.random.Generator | None = None,
    max_rounds: int | None = None,
) -> ColoringResult:
    """Edge-based speculative coloring.

    Parameters
    ----------
    max_rounds:
        Safety valve; the expected round count is O(log n).
    """
    rng = as_generator(seed)
    n = graph.n_vertices
    t0 = telemetry.clock()
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return ColoringResult(
            colors, "speculative-eb", engine="speculative-eb", n_rounds=0
        )
    if max_rounds is None:
        max_rounds = n + 1

    edges = graph.edges()  # the resident edge list (the memory hog)
    eu = edges[:, 0].astype(np.int64)
    ev = edges[:, 1].astype(np.int64)
    # Random priorities resolve conflicts symmetrically.
    priority = rng.permutation(n)

    rounds = 0
    total_conflicts = 0
    worklist = np.arange(n, dtype=np.int64)
    for _ in range(max_rounds):
        if worklist.size == 0:
            break
        rounds += 1
        # Speculative phase: each worklist vertex picks the smallest
        # color not used by any neighbor *right now* (stale reads allowed
        # in the real parallel version; here sequential-consistent reads
        # still produce conflicts because worklist vertices are mutually
        # unaware of each other's simultaneous picks).
        snapshot = colors.copy()
        for v in worklist:
            forb = snapshot[graph.neighbors(v)]
            colors[v] = smallest_available_color(forb)
        # Edge-based conflict detection: monochrome edges lose their
        # lower-priority endpoint.
        bad = colors[eu] == colors[ev]
        bad &= colors[eu] >= 0
        losers = np.where(priority[eu[bad]] < priority[ev[bad]], eu[bad], ev[bad])
        losers = np.unique(losers)
        total_conflicts += int(losers.size)
        colors[losers] = -1
        worklist = losers
    else:  # pragma: no cover - safety valve
        raise RuntimeError("speculative_coloring failed to converge")
    elapsed = telemetry.clock() - t0
    # Memory: CSR + full edge list + priorities + colors + conflict masks.
    peak = (
        graph.nbytes
        + edges.nbytes
        + eu.nbytes
        + ev.nbytes
        + priority.nbytes
        + 2 * colors.nbytes
        + len(eu)
    )
    return ColoringResult(
        colors=colors,
        algorithm="speculative-eb",
        peak_bytes=int(peak),
        elapsed_s=elapsed,
        engine="speculative-eb",
        n_rounds=rounds,
        stats={"rounds": rounds, "conflicts": total_conflicts},
    )
