"""Greedy list coloring of the conflict graph (paper §IV-B, Algorithm 2).

Given the conflict graph ``Gc`` and each vertex's candidate color list,
assign every vertex a color *from its own list* such that no conflict
edge is monochrome.  Vertices whose list empties out stay uncolored and
roll over to the next Picasso iteration (the set ``Vu``).

Home of the serial Algorithm 2 machinery (migrated here from
``repro.core.list_coloring`` when the coloring-engine subsystem was
unified — :mod:`repro.coloring.engine` wraps these functions behind the
:class:`~repro.coloring.engine.ListColoringEngine` registry; the old
module remains as a re-export shim).

Three schemes:

- :func:`greedy_list_color_dynamic` — Algorithm 2 on packed palette
  *bitsets*: always color a vertex with the currently smallest list
  ("most constrained first").  Candidate lists live in a ``(n, W)``
  uint64 bitset matrix, neighbor updates are one vectorized word mask
  per step, and the smallest-list priority structure is flat int-array
  bucket queues (value = list size) with O(1) swap-removal — no Python
  ``set`` objects or list-of-lists on the hot path.
- :func:`greedy_list_color_dynamic_sets` — the original Python-``set``
  implementation, kept as the seeded-equivalence reference and as the
  legacy half of the tiled-vs-gather ablation.  Both dynamic variants
  draw the same random numbers and make identical choices, so they
  produce identical colorings for a given seed (property-tested).
- :func:`greedy_list_color_static` — process vertices in a fixed order
  (natural / random / largest-degree-first), taking the first list
  color not used by an already-colored neighbor.  The paper reports
  dynamic ordering colors better; the static variants are kept for the
  ablation.

Random choices are canonical in both dynamic variants: the vertex is
drawn uniformly from the lowest bucket (by position), and the color is
drawn uniformly from the vertex's surviving candidates *in ascending
color order* — the natural order of a bitset scan.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.util.bits import bitset_from_lists, bitset_indices, popcount_rows
from repro.util.rng import as_generator


def greedy_list_color_dynamic(
    gc: CSRGraph,
    col_lists: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 2: bucket-based dynamic greedy list coloring on bitsets.

    Parameters
    ----------
    gc:
        Conflict graph (local vertex ids ``0..n-1``).
    col_lists:
        ``(n, L)`` matrix of local candidate color ids.  Negative
        entries are treated as padding and ignored.
    rng:
        Drives the uniform choices of Algorithm 2 (vertex from lowest
        bucket, color from list).

    Returns
    -------
    (colors, uncolored):
        ``colors`` holds a local palette id per vertex (-1 where the
        list emptied); ``uncolored`` is the sorted array ``Vu``.
    """
    rng = as_generator(rng)
    n = gc.n_vertices
    col_lists = np.asarray(col_lists, dtype=np.int64)
    if col_lists.shape[0] != n:
        raise ValueError("col_lists rows must match vertex count")
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors, np.empty(0, dtype=np.int64)

    # Packed per-vertex candidate bitsets over the local palette
    # (duplicates in a row collapse, exactly like the set() reference).
    nbits = int(col_lists.max()) + 1 if col_lists.size else 1
    masks = bitset_from_lists(col_lists, max(nbits, 1))
    sizes = popcount_rows(masks)
    max_size = int(sizes.max())

    # Flat int-array bucket queues: bucket s holds the unprocessed
    # vertices whose list currently has s candidates.  Each bucket is a
    # growable int64 array with a fill count; `pos` gives every
    # vertex's slot in its bucket so removal is an O(1) swap with the
    # last element (the paper's auxiliary-array trick).  Initial
    # population order is vertex-ascending, matching the reference.
    bucket_count = np.zeros(max_size + 1, dtype=np.int64)
    init_counts = np.bincount(sizes, minlength=max_size + 1)
    buckets = [np.empty(int(c), dtype=np.int64) for c in init_counts]
    pos = np.empty(n, dtype=np.int64)
    order = np.argsort(sizes, kind="stable")
    starts = np.zeros(max_size + 2, dtype=np.int64)
    np.cumsum(init_counts, out=starts[1:])
    for s in range(max_size + 1):
        members = order[starts[s] : starts[s + 1]]
        buckets[s][: len(members)] = members
        pos[members] = np.arange(len(members))
        bucket_count[s] = len(members)

    processed = np.zeros(n, dtype=bool)
    uncolored: list[int] = []
    n_processed = 0

    # One upfront widening of the adjacency (int32 CSR ids) beats a
    # per-step astype on every neighbor slice.
    row_offsets = gc.offsets
    targets64 = gc.targets.astype(np.int64, copy=False)

    # Degenerate all-padding rows have no candidates at all: they join
    # Vu immediately (the reference predates padding and never sees
    # such rows on the Picasso path).
    empty0 = buckets[0][: bucket_count[0]]
    if len(empty0):
        processed[empty0] = True
        n_processed += len(empty0)
        uncolored.extend(int(v) for v in empty0)
        bucket_count[0] = 0

    lowest = 0
    while n_processed < n:
        # Lowest non-empty bucket: sizes only decrease for unprocessed
        # vertices, so scanning upward after resets stays O(L) per step.
        while lowest <= max_size and bucket_count[lowest] == 0:
            lowest += 1
        buf = buckets[lowest]
        cnt = int(bucket_count[lowest])
        idx = int(rng.integers(cnt)) if cnt > 1 else 0
        v = int(buf[idx])

        # Swap-remove v from its bucket.
        last = buf[cnt - 1]
        buf[idx] = last
        pos[last] = idx
        bucket_count[lowest] = cnt - 1
        processed[v] = True
        n_processed += 1

        # Uniform color from the surviving candidates (ascending order).
        k = int(sizes[v])
        r = int(rng.integers(k)) if k > 1 else 0
        c = int(bitset_indices(masks[v])[r])
        colors[v] = c

        nbrs = targets64[row_offsets[v] : row_offsets[v + 1]]
        if len(nbrs) == 0:
            continue
        w = c >> 6
        bit = np.uint64(1) << np.uint64(c & 63)
        # One vectorized pass: neighbors still unprocessed whose list
        # contains c lose that bit and drop one bucket.
        affected = nbrs[((masks[nbrs, w] & bit) != 0) & ~processed[nbrs]]
        if len(affected) == 0:
            continue
        masks[affected, w] &= ~bit
        sizes[affected] -= 1
        for u in affected.tolist():
            s_old = int(sizes[u]) + 1
            p = int(pos[u])
            b = buckets[s_old]
            cnt2 = int(bucket_count[s_old])
            last = b[cnt2 - 1]
            b[p] = last
            pos[last] = p
            bucket_count[s_old] = cnt2 - 1
            s_new = s_old - 1
            if s_new == 0:
                # List emptied: u joins Vu and is done for this iteration.
                processed[u] = True
                n_processed += 1
                uncolored.append(u)
                continue
            b2 = buckets[s_new]
            c2 = int(bucket_count[s_new])
            if c2 == len(b2):
                grown = np.empty(max(2 * len(b2), 4), dtype=np.int64)
                grown[:c2] = b2[:c2]
                buckets[s_new] = b2 = grown
            b2[c2] = u
            pos[u] = c2
            bucket_count[s_new] = c2 + 1
            if s_new < lowest:
                lowest = s_new
    return colors, np.array(sorted(uncolored), dtype=np.int64)


def greedy_list_color_dynamic_sets(
    gc: CSRGraph,
    col_lists: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 2 on Python sets — the seeded-equivalence reference.

    Structurally the original implementation (per-vertex ``set`` state,
    list-of-lists buckets); random draws are canonicalized to ascending
    candidate order so :func:`greedy_list_color_dynamic` reproduces its
    output exactly for any seed.  Used by tests and as the legacy half
    of the tiled-vs-gather ablation (``engine="pairs"``).
    """
    rng = as_generator(rng)
    n = gc.n_vertices
    if col_lists.shape[0] != n:
        raise ValueError("col_lists rows must match vertex count")
    list_size = col_lists.shape[1]
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors, np.empty(0, dtype=np.int64)

    # Mutable per-vertex list state: live[v] = remaining candidates
    # (Python sets give O(1) removal; lists are O(L) small).
    live: list[set[int]] = [set(row) for row in col_lists.tolist()]
    sizes = np.array([len(s) for s in live], dtype=np.int64)

    # Bucket array B[s] = vertices whose current list size is s, with a
    # position index for O(1) swap-removal (paper's auxiliary array).
    buckets: list[list[int]] = [[] for _ in range(list_size + 1)]
    pos = np.empty(n, dtype=np.int64)
    for v in range(n):
        pos[v] = len(buckets[sizes[v]])
        buckets[sizes[v]].append(v)

    def bucket_remove(v: int) -> None:
        b = buckets[sizes[v]]
        p = pos[v]
        last = b[-1]
        b[p] = last
        pos[last] = p
        b.pop()

    def bucket_insert(v: int) -> None:
        b = buckets[sizes[v]]
        pos[v] = len(b)
        b.append(v)

    processed = np.zeros(n, dtype=bool)
    uncolored: list[int] = []
    n_processed = 0
    lowest = 0
    while n_processed < n:
        # Find the lowest non-empty bucket.  Sizes only decrease for
        # unprocessed vertices, so scanning upward from `lowest` after a
        # reset to the smallest possible decrease keeps this O(L) per
        # step as the paper argues.
        while lowest <= list_size and not buckets[lowest]:
            lowest += 1
        blist = buckets[lowest]
        v = blist[int(rng.integers(len(blist)))] if len(blist) > 1 else blist[0]

        bucket_remove(v)
        processed[v] = True
        n_processed += 1
        cand = live[v]
        if len(cand) > 1:
            ordered = sorted(cand)
            c = ordered[int(rng.integers(len(ordered)))]
        else:
            c = next(iter(cand))
        colors[v] = c
        for u in gc.neighbors(v):
            u = int(u)
            if processed[u] or c not in live[u]:
                continue
            live[u].discard(c)
            bucket_remove(u)
            sizes[u] -= 1
            if sizes[u] == 0:
                # List emptied: u joins Vu and is done for this iteration.
                processed[u] = True
                n_processed += 1
                uncolored.append(u)
            else:
                bucket_insert(u)
                if sizes[u] < lowest:
                    lowest = int(sizes[u])
    return colors, np.array(sorted(uncolored), dtype=np.int64)


def greedy_list_color_static(
    gc: CSRGraph,
    col_lists: np.ndarray,
    order: str = "natural",
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Static-order list coloring (§IV-B "static order schemes").

    Vertices are visited in a fixed order (``natural``, ``random`` or
    ``lf`` = conflict-graph degree descending); each takes the first
    color of its list unused by already-colored neighbors.
    """
    rng = as_generator(rng)
    n = gc.n_vertices
    if col_lists.shape[0] != n:
        raise ValueError("col_lists rows must match vertex count")
    if order == "natural":
        perm = np.arange(n, dtype=np.int64)
    elif order == "random":
        perm = rng.permutation(n).astype(np.int64)
    elif order == "lf":
        perm = np.argsort(-gc.degree(), kind="stable").astype(np.int64)
    else:
        raise ValueError(f"unknown static order {order!r}")

    colors = np.full(n, -1, dtype=np.int64)
    uncolored: list[int] = []
    for v in perm:
        taken = set(
            int(c) for c in colors[gc.neighbors(v)] if c >= 0
        )
        chosen = -1
        for c in col_lists[v]:
            if int(c) not in taken:
                chosen = int(c)
                break
        if chosen < 0:
            uncolored.append(int(v))
        else:
            colors[v] = chosen
    return colors, np.array(sorted(uncolored), dtype=np.int64)
