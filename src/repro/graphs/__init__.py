"""Graph substrate (paper §II-B).

Explicit CSR graphs for the memory-hungry baselines, plus builders from
Pauli sets (anticommute graph ``G`` and its complement ``G'``),
synthetic generators and graph operations.
"""

from repro.graphs.build import (
    anticommute_edge_count,
    anticommute_graph,
    complement_edge_count,
    complement_graph,
)
from repro.graphs.csr import CSRGraph, from_edge_list, index_dtype
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    random_bipartite,
    star_graph,
)
from repro.graphs.ops import complement, from_networkx, induced_subgraph, to_networkx

__all__ = [
    "anticommute_edge_count",
    "anticommute_graph",
    "complement_edge_count",
    "complement_graph",
    "CSRGraph",
    "from_edge_list",
    "index_dtype",
    "complete_graph",
    "cycle_graph",
    "empty_graph",
    "erdos_renyi",
    "random_bipartite",
    "star_graph",
    "complement",
    "from_networkx",
    "induced_subgraph",
    "to_networkx",
]
