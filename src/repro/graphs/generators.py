"""Synthetic graph generators (test and ablation inputs).

Picasso is "designed to solve a specific problem in quantum computing
[but] can be used in a generalized graph setting" (§I) — these
generators provide that generalized setting: Erdős–Rényi at arbitrary
density, complete graphs, cycles, stars and random bipartite graphs,
all as :class:`CSRGraph`.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph, from_edge_list
from repro.util.chunking import num_pairs, pair_index_to_ij
from repro.util.rng import as_generator


def erdos_renyi(
    n: int, p: float, seed: int | np.random.Generator | None = None
) -> CSRGraph:
    """G(n, p) random graph; edge probability ``p`` per unordered pair.

    Dense-regime friendly: samples a Bernoulli mask over flat pair
    indices instead of rejection sampling.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = as_generator(seed)
    total = num_pairs(n)
    mask = rng.random(total) < p
    k = np.nonzero(mask)[0]
    u, v = pair_index_to_ij(k, n)
    return from_edge_list(u, v, n)


def complete_graph(n: int) -> CSRGraph:
    """K_n — worst case for coloring (needs exactly n colors)."""
    k = np.arange(num_pairs(n), dtype=np.int64)
    u, v = pair_index_to_ij(k, n)
    return from_edge_list(u, v, n)


def cycle_graph(n: int) -> CSRGraph:
    """C_n — chromatic number 2 (even n) or 3 (odd n)."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return from_edge_list(u, v, n)


def star_graph(n: int) -> CSRGraph:
    """K_{1,n-1} — hub 0, chromatic number 2, max degree n-1."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    u = np.zeros(n - 1, dtype=np.int64)
    v = np.arange(1, n, dtype=np.int64)
    return from_edge_list(u, v, n)


def random_bipartite(
    n_left: int,
    n_right: int,
    p: float,
    seed: int | np.random.Generator | None = None,
) -> CSRGraph:
    """Random bipartite graph — 2-colorable whatever ``p`` is, a useful
    quality sanity check for every coloring algorithm."""
    rng = as_generator(seed)
    mask = rng.random((n_left, n_right)) < p
    li, ri = np.nonzero(mask)
    return from_edge_list(li, ri + n_left, n_left + n_right)


def empty_graph(n: int) -> CSRGraph:
    """n isolated vertices (1-colorable)."""
    return from_edge_list(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), n
    )
