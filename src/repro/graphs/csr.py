"""Compressed Sparse Row graph.

The only explicit graph representation in the library (matching the
paper's §V choice: CSR gives contiguous adjacency scans during conflict
coloring).  Undirected graphs store each edge twice.  All arrays are
NumPy so the memory accounting of Table IV is exact:
``offsets`` is ``int64[n+1]``; ``targets`` is ``int32``/``int64``
depending on vertex count (mirroring the paper's 4-byte/8-byte counter
switch in Algorithm 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def index_dtype(n_vertices: int) -> type:
    """4-byte ids when they fit, 8-byte otherwise (paper §V)."""
    return np.int32 if n_vertices < 2**31 else np.int64


@dataclass(frozen=True)
class CSRGraph:
    """Undirected graph in CSR form.

    Attributes
    ----------
    offsets:
        ``int64[n+1]`` prefix offsets into ``targets``.
    targets:
        Neighbor ids; each undirected edge appears in both endpoint rows.
    """

    offsets: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        if self.offsets.ndim != 1 or self.targets.ndim != 1:
            raise ValueError("offsets and targets must be 1-D")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.targets):
            raise ValueError("offsets do not span targets")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")

    @property
    def n_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_edges(self) -> int:
        """Undirected edge count (half the stored directed arcs)."""
        return len(self.targets) // 2

    def degree(self, v: int | None = None) -> np.ndarray | int:
        """Degree of ``v``, or the full degree vector when ``v`` is None."""
        if v is None:
            return np.diff(self.offsets).astype(np.int64)
        return int(self.offsets[v + 1] - self.offsets[v])

    def neighbors(self, v: int) -> np.ndarray:
        """View of the adjacency row of ``v``."""
        return self.targets[self.offsets[v] : self.offsets[v + 1]]

    def max_degree(self) -> int:
        if self.n_vertices == 0:
            return 0
        return int(np.diff(self.offsets).max())

    def average_degree(self) -> float:
        if self.n_vertices == 0:
            return 0.0
        return float(len(self.targets)) / self.n_vertices

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.isin(v, self.neighbors(u)).any())

    def edges(self) -> np.ndarray:
        """``(m, 2)`` array of unique undirected edges with u < v."""
        src = np.repeat(
            np.arange(self.n_vertices, dtype=self.targets.dtype),
            np.diff(self.offsets),
        )
        mask = src < self.targets
        return np.stack([src[mask], self.targets[mask]], axis=1)

    @property
    def nbytes(self) -> int:
        """Bytes held by the CSR arrays (Table IV accounting)."""
        return self.offsets.nbytes + self.targets.nbytes

    def validate_coloring(self, colors: np.ndarray) -> bool:
        """True iff ``colors`` is a proper coloring (no monochrome edge);
        vertices colored -1 are treated as uncolored and fail."""
        colors = np.asarray(colors)
        if colors.shape != (self.n_vertices,):
            raise ValueError("color array has wrong length")
        if (colors < 0).any():
            return False
        e = self.edges()
        if len(e) == 0:
            return True
        return not (colors[e[:, 0]] == colors[e[:, 1]]).any()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n={self.n_vertices}, m={self.n_edges})"


def _fill_arcs(
    cursor: np.ndarray, targets: np.ndarray, src: np.ndarray, dst: np.ndarray
) -> None:
    """Scatter one direction of arcs into preallocated CSR ``targets``.

    ``cursor`` holds each vertex's next write position and advances by
    that vertex's arc count — the "fill" half of the two-pass
    count-then-fill construction.  Arcs are written in appearance
    order: inputs already sorted by ``src`` (tile/pair sweeps emit rows
    ascending) skip the stable counting sort entirely.
    """
    if len(src) == 0:
        return
    if np.any(src[:-1] > src[1:]):
        order = np.argsort(src, kind="stable")
        src = src[order]
        dst = dst[order]
    # Rank of each arc within its (contiguous) source-vertex run.
    change = np.empty(len(src), dtype=bool)
    change[0] = True
    np.not_equal(src[1:], src[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    run_lengths = np.diff(np.append(starts, len(src)))
    rank = np.arange(len(src), dtype=np.int64) - np.repeat(starts, run_lengths)
    targets[cursor[src] + rank] = dst
    cursor[src[starts]] += run_lengths


def csr_from_coo_chunks(
    chunks: list[tuple[np.ndarray, np.ndarray]], n_vertices: int
) -> CSRGraph:
    """Two-pass count-then-fill CSR assembly from streamed COO chunks.

    ``chunks`` is a list of ``(u, v)`` endpoint arrays, each unordered
    edge appearing exactly once across all chunks (the output of a pair
    or tile sweep).  Pass 1 accumulates per-vertex degrees; pass 2
    scatters both arc directions into one exactly-sized ``targets``
    buffer.  Nothing is concatenated and no global sort runs — the
    assembly is O(arcs) after the counting pass.

    Arc order per vertex matches the legacy concatenate-and-stable-sort
    assembly (all ``u``-side arcs in chunk order, then all ``v``-side
    arcs), so downstream order-sensitive consumers see identical CSR.
    """
    chunks = [
        (np.asarray(u, dtype=np.int64), np.asarray(v, dtype=np.int64))
        for u, v in chunks
        if len(u)
    ]
    counts = np.zeros(n_vertices, dtype=np.int64)
    m = 0
    for u, v in chunks:
        # Small chunks scatter directly; big ones amortize a full-width
        # bincount.  Keeps the counting pass O(arcs + n), not
        # O(n_chunks * n), when a tile sweep feeds thousands of chunks.
        if 4 * len(u) < n_vertices:
            np.add.at(counts, u, 1)
            np.add.at(counts, v, 1)
        else:
            counts += np.bincount(u, minlength=n_vertices)
            counts += np.bincount(v, minlength=n_vertices)
        m += len(u)
    offsets = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    targets = np.empty(2 * m, dtype=index_dtype(n_vertices))
    cursor = offsets[:-1].copy()
    for u, v in chunks:
        _fill_arcs(cursor, targets, u, v)
    for u, v in chunks:
        _fill_arcs(cursor, targets, v, u)
    return CSRGraph(offsets=offsets, targets=targets)


def from_edge_list(
    u: np.ndarray, v: np.ndarray, n_vertices: int, dedupe: bool = False
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an undirected edge list.

    Two-pass count-then-fill construction: per-vertex degrees are
    counted first, then both arc directions are scattered into a
    preallocated ``targets`` array (no concatenation, no global sort).

    Parameters
    ----------
    u, v:
        Endpoint arrays (any orientation; self-loops rejected).
    n_vertices:
        Total vertex count (isolated vertices allowed).
    dedupe:
        Remove duplicate edges first (costs a sort of the edge list).
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.shape != v.shape:
        raise ValueError("endpoint arrays differ in length")
    if (u == v).any():
        raise ValueError("self-loops not allowed")
    if len(u) and (min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n_vertices):
        raise ValueError("vertex id out of range")
    if dedupe and len(u):
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        key = lo * np.int64(n_vertices) + hi
        _, keep = np.unique(key, return_index=True)
        u, v = lo[keep], hi[keep]
    return csr_from_coo_chunks([(u, v)], n_vertices)
