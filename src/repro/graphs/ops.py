"""Graph operations: induced subgraphs, complements, conversions."""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph, from_edge_list, index_dtype
from repro.util.chunking import num_pairs, pair_index_to_ij


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices`` (paper Alg. 1, line 11).

    Returns the relabeled subgraph plus the ``old_id`` array mapping new
    vertex ids back to the originals.

    Works directly on the CSR arrays: the selected rows are gathered
    once, arcs to unselected endpoints are dropped, and the surviving
    arcs (already grouped by source) scatter straight into the new
    ``targets`` — no edge-list materialization, no symmetrization and
    no sort (the arcs of a CSR row stay in their original order).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if len(np.unique(vertices)) != len(vertices):
        raise ValueError("vertex list contains duplicates")
    n_old = graph.n_vertices
    n_new = len(vertices)
    if n_new == n_old and np.array_equal(
        vertices, np.arange(n_old, dtype=np.int64)
    ):
        return graph, vertices
    new_id = np.full(n_old, -1, dtype=np.int64)
    new_id[vertices] = np.arange(n_new)

    row_starts = graph.offsets[vertices]
    row_lengths = (graph.offsets[vertices + 1] - row_starts).astype(np.int64)
    total = int(row_lengths.sum())
    if total == 0:
        offsets = np.zeros(n_new + 1, dtype=np.int64)
        return CSRGraph(
            offsets=offsets, targets=np.empty(0, dtype=index_dtype(n_new))
        ), vertices
    # Flat indices of every arc leaving a selected vertex.
    shift = np.zeros(n_new, dtype=np.int64)
    np.cumsum(row_lengths[:-1], out=shift[1:])
    arc_idx = np.repeat(row_starts - shift, row_lengths) + np.arange(total)
    mapped = new_id[graph.targets[arc_idx]]
    keep = mapped >= 0
    src = np.repeat(np.arange(n_new, dtype=np.int64), row_lengths)[keep]
    dst = mapped[keep]

    counts = np.bincount(src, minlength=n_new)
    offsets = np.zeros(n_new + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # src is sorted (rows were gathered in order), so the surviving
    # arcs are already laid out in CSR order.
    targets = dst.astype(index_dtype(n_new))
    return CSRGraph(offsets=offsets, targets=targets), vertices


def complement(graph: CSRGraph) -> CSRGraph:
    """Explicit complement (small graphs only — quadratic by nature)."""
    n = graph.n_vertices
    if num_pairs(n) > 50_000_000:
        raise MemoryError("complement() materializes all pairs; graph too large")
    k = np.arange(num_pairs(n), dtype=np.int64)
    u, v = pair_index_to_ij(k, n)
    # Mark existing edges and invert.
    existing = np.zeros(num_pairs(n), dtype=bool)
    e = graph.edges()
    if len(e):
        lo = np.minimum(e[:, 0], e[:, 1]).astype(np.int64)
        hi = np.maximum(e[:, 0], e[:, 1]).astype(np.int64)
        flat = lo * n - lo * (lo + 1) // 2 + (hi - lo - 1)
        existing[flat] = True
    keep = ~existing
    return from_edge_list(u[keep], v[keep], n)


def to_networkx(graph: CSRGraph):
    """Convert to :class:`networkx.Graph` (test oracle / interop)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.n_vertices))
    g.add_edges_from(map(tuple, graph.edges().tolist()))
    return g


def from_networkx(g) -> CSRGraph:
    """Build a :class:`CSRGraph` from a :class:`networkx.Graph`."""
    import networkx as nx

    if not isinstance(g, nx.Graph) or g.is_directed():
        raise TypeError("expected an undirected networkx.Graph")
    mapping = {node: i for i, node in enumerate(g.nodes())}
    edges = np.array(
        [(mapping[a], mapping[b]) for a, b in g.edges()], dtype=np.int64
    ).reshape(-1, 2)
    return from_edge_list(edges[:, 0], edges[:, 1], g.number_of_nodes())
