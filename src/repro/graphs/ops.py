"""Graph operations: induced subgraphs, complements, conversions."""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph, from_edge_list
from repro.util.chunking import num_pairs, pair_index_to_ij


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices`` (paper Alg. 1, line 11).

    Returns the relabeled subgraph plus the ``old_id`` array mapping new
    vertex ids back to the originals.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if len(np.unique(vertices)) != len(vertices):
        raise ValueError("vertex list contains duplicates")
    n_old = graph.n_vertices
    new_id = np.full(n_old, -1, dtype=np.int64)
    new_id[vertices] = np.arange(len(vertices))
    e = graph.edges()
    if len(e):
        keep = (new_id[e[:, 0]] >= 0) & (new_id[e[:, 1]] >= 0)
        u = new_id[e[keep, 0]]
        v = new_id[e[keep, 1]]
    else:
        u = v = np.empty(0, dtype=np.int64)
    return from_edge_list(u, v, len(vertices)), vertices


def complement(graph: CSRGraph) -> CSRGraph:
    """Explicit complement (small graphs only — quadratic by nature)."""
    n = graph.n_vertices
    if num_pairs(n) > 50_000_000:
        raise MemoryError("complement() materializes all pairs; graph too large")
    k = np.arange(num_pairs(n), dtype=np.int64)
    u, v = pair_index_to_ij(k, n)
    # Mark existing edges and invert.
    existing = np.zeros(num_pairs(n), dtype=bool)
    e = graph.edges()
    if len(e):
        lo = np.minimum(e[:, 0], e[:, 1]).astype(np.int64)
        hi = np.maximum(e[:, 0], e[:, 1]).astype(np.int64)
        flat = lo * n - lo * (lo + 1) // 2 + (hi - lo - 1)
        existing[flat] = True
    keep = ~existing
    return from_edge_list(u[keep], v[keep], n)


def to_networkx(graph: CSRGraph):
    """Convert to :class:`networkx.Graph` (test oracle / interop)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.n_vertices))
    g.add_edges_from(map(tuple, graph.edges().tolist()))
    return g


def from_networkx(g) -> CSRGraph:
    """Build a :class:`CSRGraph` from a :class:`networkx.Graph`."""
    import networkx as nx

    if not isinstance(g, nx.Graph) or g.is_directed():
        raise TypeError("expected an undirected networkx.Graph")
    mapping = {node: i for i, node in enumerate(g.nodes())}
    edges = np.array(
        [(mapping[a], mapping[b]) for a, b in g.edges()], dtype=np.int64
    ).reshape(-1, 2)
    return from_edge_list(edges[:, 0], edges[:, 1], g.number_of_nodes())
