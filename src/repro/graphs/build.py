"""Graph builders over Pauli sets.

These are the *explicit* constructions the baselines need — Picasso
itself never materializes the complement graph (that is the paper's
whole point), but ColPack-style greedy, Jones–Plassmann and speculative
coloring must load the full graph into memory, so Table IV's memory
comparison requires building it.

The pair sweep runs on the tiled block-broadcast engine
(:mod:`repro.device.tiles`): each tile evaluates the oracle's block
kernel once over contiguous row slices instead of gathering both
operand rows per pair, and the hits stream into the two-pass
count-then-fill CSR assembly.  With ``n_workers >= 2`` the sweep is
dispatched over the execution backend layer
(:mod:`repro.parallel.executor`) as balanced contiguous tile strips;
strip results are gathered in canonical tile order, so parallel and
serial builds produce bit-identical CSR.
"""

from __future__ import annotations

from repro.device.tiles import (
    DEFAULT_TILE_BYTES,
    count_block_hits,
    tile_edge,
)
from repro.graphs.csr import CSRGraph, csr_from_coo_chunks
from repro.pauli.strings import PauliSet
from repro.util.chunking import num_pairs


def anticommute_graph(
    pauli_set: PauliSet,
    chunk_size: int = 1 << 20,
    kernel: str = "iooh",
    n_workers: int = 1,
    executor=None,
    hosts=None,
) -> CSRGraph:
    """Explicit graph ``G``: edges connect anticommuting string pairs."""
    return _oracle_graph(
        pauli_set, want_anticommute=True, chunk_size=chunk_size,
        kernel=kernel, n_workers=n_workers, executor=executor, hosts=hosts,
    )


def complement_graph(
    pauli_set: PauliSet,
    chunk_size: int = 1 << 20,
    kernel: str = "iooh",
    n_workers: int = 1,
    executor=None,
    hosts=None,
) -> CSRGraph:
    """Explicit complement graph ``G'``: edges connect *commuting*
    distinct pairs — the graph the coloring baselines run on (§II-B).

    ``hosts`` shards the sweep over multi-host worker agents
    (:mod:`repro.distributed`); results merge in canonical tile order,
    so the built CSR is bit-identical to the serial one.
    """
    return _oracle_graph(
        pauli_set, want_anticommute=False, chunk_size=chunk_size,
        kernel=kernel, n_workers=n_workers, executor=executor, hosts=hosts,
    )


def _block_fn(oracle, want_anticommute: bool):
    """Tiled predicate over the oracle: anticommute or its complement.

    Bound oracle methods, not closures, so the predicate pickles into
    spawn-context pool workers.
    """
    return oracle.anticommute_block if want_anticommute else oracle.commute_block


def _oracle_tile(pauli_set: PauliSet, chunk_size: int) -> int:
    """Tile edge for an oracle sweep; ``chunk_size`` (pairs per legacy
    launch) doubles as a scratch hint so old callers keep their knob."""
    return tile_edge(1, min(DEFAULT_TILE_BYTES, 10 * chunk_size), n=pauli_set.n)


def _oracle_graph(
    pauli_set: PauliSet,
    want_anticommute: bool,
    chunk_size: int,
    kernel: str,
    n_workers: int = 1,
    executor=None,
    hosts=None,
) -> CSRGraph:
    oracle = pauli_set.oracle(kernel)
    tile = _oracle_tile(pauli_set, chunk_size)
    block_fn = _block_fn(oracle, want_anticommute)
    # Imported lazily: repro.parallel pulls in this package, so a
    # module-level import would be circular.
    from repro.parallel.executor import owned_executor
    from repro.parallel.pool import block_sweep_chunks

    # One path for every backend: a serial executor short-circuits to
    # the in-process sweep inside block_sweep_chunks, and the lifecycle
    # contract (close what this call materialized, leave a passed
    # instance open) lives in owned_executor.
    with owned_executor(
        executor if executor is not None else "auto", n_workers, hosts=hosts
    ) as ex:
        chunks = [
            (i, j)
            for i, j in block_sweep_chunks(
                pauli_set.n, block_fn, tile, executor=ex
            )
            if len(i)
        ]
    return csr_from_coo_chunks(chunks, pauli_set.n)


def complement_edge_count(pauli_set: PauliSet, chunk_size: int = 1 << 20) -> int:
    """Number of complement edges without materializing the graph
    (used for Table II reporting at scales where the explicit graph
    would not fit)."""
    return num_pairs(pauli_set.n) - anticommute_edge_count(pauli_set, chunk_size)


def anticommute_edge_count(pauli_set: PauliSet, chunk_size: int = 1 << 20) -> int:
    """Number of anticommute edges (Table II's "# of edges" column)."""
    oracle = pauli_set.oracle()
    tile = _oracle_tile(pauli_set, chunk_size)
    return count_block_hits(pauli_set.n, oracle.anticommute_block, tile)
