"""Graph builders over Pauli sets.

These are the *explicit* constructions the baselines need — Picasso
itself never materializes the complement graph (that is the paper's
whole point), but ColPack-style greedy, Jones–Plassmann and speculative
coloring must load the full graph into memory, so Table IV's memory
comparison requires building it.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph, from_edge_list
from repro.pauli.strings import PauliSet
from repro.util.chunking import iter_pair_chunks


def anticommute_graph(
    pauli_set: PauliSet, chunk_size: int = 1 << 20, kernel: str = "iooh"
) -> CSRGraph:
    """Explicit graph ``G``: edges connect anticommuting string pairs."""
    return _oracle_graph(pauli_set, want_anticommute=True, chunk_size=chunk_size, kernel=kernel)


def complement_graph(
    pauli_set: PauliSet, chunk_size: int = 1 << 20, kernel: str = "iooh"
) -> CSRGraph:
    """Explicit complement graph ``G'``: edges connect *commuting*
    distinct pairs — the graph the coloring baselines run on (§II-B)."""
    return _oracle_graph(pauli_set, want_anticommute=False, chunk_size=chunk_size, kernel=kernel)


def _oracle_graph(
    pauli_set: PauliSet, want_anticommute: bool, chunk_size: int, kernel: str
) -> CSRGraph:
    oracle = pauli_set.oracle(kernel)
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for i, j in iter_pair_chunks(pauli_set.n, chunk_size):
        mask = oracle.anticommute(i, j).astype(bool)
        if not want_anticommute:
            mask = ~mask
        us.append(i[mask])
        vs.append(j[mask])
    u = np.concatenate(us) if us else np.empty(0, dtype=np.int64)
    v = np.concatenate(vs) if vs else np.empty(0, dtype=np.int64)
    return from_edge_list(u, v, pauli_set.n)


def complement_edge_count(pauli_set: PauliSet, chunk_size: int = 1 << 20) -> int:
    """Number of complement edges without materializing the graph
    (used for Table II reporting at scales where the explicit graph
    would not fit)."""
    oracle = pauli_set.oracle()
    total = 0
    for i, j in iter_pair_chunks(pauli_set.n, chunk_size):
        total += int(oracle.commute_edges(i, j).sum())
    return total


def anticommute_edge_count(pauli_set: PauliSet, chunk_size: int = 1 << 20) -> int:
    """Number of anticommute edges (Table II's "# of edges" column)."""
    oracle = pauli_set.oracle()
    total = 0
    for i, j in iter_pair_chunks(pauli_set.n, chunk_size):
        total += int(oracle.anticommute(i, j).sum())
    return total
