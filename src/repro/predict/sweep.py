"""Parameter sweeps and the Eq. 7 bi-objective (paper §VI, Step 1–2).

For a given input, sweep the ``(P', alpha)`` grid, record final colors
``C`` and the maximum per-iteration conflict-edge count ``|Ec|``, then
pick, for each trade-off weight ``beta``, the grid point minimizing

    beta * C_norm + (1 - beta) * Ec_norm                       (Eq. 7)

``C`` and ``|Ec|`` live on wildly different scales, so both are min-max
normalized within the sweep before weighting (the paper leaves the
scaling implicit; without it beta would be meaningless).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import PicassoParams
from repro.core.picasso import Picasso

#: Default grids from §VI: P' in {1, 2.5, 5, ..., 20}%, alpha in {0.5..4.5}.
DEFAULT_PALETTE_PERCENTS = (1.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0)
DEFAULT_ALPHAS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5)
DEFAULT_BETAS = tuple(round(0.1 * k, 1) for k in range(1, 10))


@dataclass(frozen=True)
class SweepPoint:
    """One grid evaluation."""

    palette_percent: float
    alpha: float
    n_colors: int
    max_conflict_edges: int
    elapsed_s: float
    n_iterations: int


def run_sweep(
    target,
    palette_percents=DEFAULT_PALETTE_PERCENTS,
    alphas=DEFAULT_ALPHAS,
    seed: int = 0,
) -> list[SweepPoint]:
    """Step 1: evaluate Picasso at every grid point."""
    points = []
    for pp in palette_percents:
        for a in alphas:
            params = PicassoParams(palette_fraction=pp / 100.0, alpha=a)
            result = Picasso(params=params, seed=seed).color(target)
            points.append(
                SweepPoint(
                    palette_percent=pp,
                    alpha=a,
                    n_colors=result.n_colors,
                    max_conflict_edges=result.max_conflict_edges,
                    elapsed_s=result.elapsed_s,
                    n_iterations=result.n_iterations,
                )
            )
    return points


def objective(
    beta: float, colors_norm: np.ndarray, edges_norm: np.ndarray
) -> np.ndarray:
    """Eq. 7 on pre-normalized objectives."""
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    return beta * colors_norm + (1.0 - beta) * edges_norm


def normalize_objectives(points: list[SweepPoint]) -> tuple[np.ndarray, np.ndarray]:
    """Min-max normalize (C, |Ec|) across the sweep."""
    c = np.array([p.n_colors for p in points], dtype=np.float64)
    e = np.array([p.max_conflict_edges for p in points], dtype=np.float64)

    def mm(x: np.ndarray) -> np.ndarray:
        span = x.max() - x.min()
        return np.zeros_like(x) if span == 0 else (x - x.min()) / span

    return mm(c), mm(e)


def optimal_point(points: list[SweepPoint], beta: float) -> SweepPoint:
    """Step 2: grid point minimizing Eq. 7 for one beta."""
    if not points:
        raise ValueError("empty sweep")
    cn, en = normalize_objectives(points)
    scores = objective(beta, cn, en)
    return points[int(np.argmin(scores))]


def optimal_frontier(
    points: list[SweepPoint], betas=DEFAULT_BETAS
) -> list[tuple[float, SweepPoint]]:
    """Step 3: the (beta -> optimal grid point) table for one input."""
    return [(b, optimal_point(points, b)) for b in betas]
