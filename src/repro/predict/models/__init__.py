"""From-scratch regressors for the §VI parameter predictor."""

from repro.predict.models.forest import RandomForestRegressor
from repro.predict.models.linear import LassoRegressor, RidgeRegressor
from repro.predict.models.metrics import mape, r2_score
from repro.predict.models.tree import DecisionTreeRegressor

__all__ = [
    "RandomForestRegressor",
    "LassoRegressor",
    "RidgeRegressor",
    "mape",
    "r2_score",
    "DecisionTreeRegressor",
]
