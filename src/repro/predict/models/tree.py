"""CART regression tree (variance-reduction splits), multi-output.

Supports the paper's configuration (max depth 20) and serves as the
base learner for :class:`repro.predict.models.forest.RandomForestRegressor`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: np.ndarray | None = None  # leaf mean vector

    @property
    def is_leaf(self) -> bool:
        return self.value is not None


class DecisionTreeRegressor:
    """Binary regression tree minimizing total output variance.

    Parameters
    ----------
    max_depth:
        Depth cap (paper uses 20).
    min_samples_split:
        Nodes smaller than this become leaves.
    min_samples_leaf:
        Candidate splits leaving fewer rows on a side are rejected.
    max_features:
        Features considered per split: ``None`` = all, ``"sqrt"``, or an
        int (used by the random forest for decorrelation).
    """

    def __init__(
        self,
        max_depth: int = 20,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        from repro.util.rng import as_generator

        self.rng = as_generator(seed)
        self._root: _Node | None = None
        self.n_outputs_: int = 0
        self.n_features_: int = 0

    # -- fitting ---------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        if X.ndim != 2 or len(X) != len(y) or len(X) == 0:
            raise ValueError("bad training shapes")
        self.n_features_ = X.shape[1]
        self.n_outputs_ = y.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        return min(int(self.max_features), self.n_features_)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n = len(X)
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or np.allclose(y, y[0])
        ):
            return _Node(value=y.mean(axis=0))
        feat, thr = self._best_split(X, y)
        if feat < 0:
            return _Node(value=y.mean(axis=0))
        mask = X[:, feat] <= thr
        return _Node(
            feature=feat,
            threshold=thr,
            left=self._build(X[mask], y[mask], depth + 1),
            right=self._build(X[~mask], y[~mask], depth + 1),
        )

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float]:
        """Exact best (feature, threshold) by prefix-sum variance scan."""
        n, d = X.shape
        k = self._n_candidate_features()
        feats = (
            np.arange(d)
            if k == d
            else self.rng.choice(d, size=k, replace=False)
        )
        best_feat, best_thr = -1, 0.0
        # total SSE of the node (constant offset); we minimize child SSE.
        best_score = np.inf
        msl = self.min_samples_leaf
        for f in feats:
            order = np.argsort(X[:, f], kind="stable")
            xs = X[order, f]
            ys = y[order]
            # Candidate cut points: between distinct consecutive xs.
            csum = np.cumsum(ys, axis=0)
            csq = np.cumsum(ys**2, axis=0)
            tot_sum = csum[-1]
            tot_sq = csq[-1]
            idx = np.arange(1, n)  # left size
            valid = (xs[1:] != xs[:-1]) & (idx >= msl) & ((n - idx) >= msl)
            if not valid.any():
                continue
            lefts = idx[valid]
            ls = csum[lefts - 1]
            lq = csq[lefts - 1]
            rs = tot_sum - ls
            rq = tot_sq - lq
            sse = (lq - ls**2 / lefts[:, None]).sum(axis=1) + (
                rq - rs**2 / (n - lefts)[:, None]
            ).sum(axis=1)
            j = int(np.argmin(sse))
            if sse[j] < best_score - 1e-15:
                best_score = float(sse[j])
                cut = lefts[j]
                best_feat = int(f)
                best_thr = float(0.5 * (xs[cut - 1] + xs[cut]))
        return best_feat, best_thr

    # -- inference ---------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty((len(X), self.n_outputs_))
        for r, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[r] = node.value
        return out[:, 0] if self.n_outputs_ == 1 else out

    def depth(self) -> int:
        """Actual tree depth (diagnostics)."""

        def _d(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        if self._root is None:
            raise RuntimeError("model is not fitted")
        return _d(self._root)
