"""Linear regressors: ridge (closed form) and lasso (coordinate descent).

The paper's §VI baseline models.  Multi-output, with internal feature
standardization so regularization strengths are scale-free.
"""

from __future__ import annotations

import numpy as np


class _StandardizedLinear:
    """Shared fit/predict plumbing: standardize X, center y."""

    def __init__(self) -> None:
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self._x_mean: np.ndarray | None = None
        self._x_std: np.ndarray | None = None

    def _prepare(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if y.ndim == 1:
            y = y[:, None]
        if len(X) != len(y):
            raise ValueError("X and y row counts differ")
        self._x_mean = X.mean(axis=0)
        self._x_std = X.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        return (X - self._x_mean) / self._x_std, y

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        Xs = (X - self._x_mean) / self._x_std
        out = Xs @ self.coef_ + self.intercept_
        return out[:, 0] if out.shape[1] == 1 else out


class RidgeRegressor(_StandardizedLinear):
    """L2-regularized least squares, solved in closed form."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegressor":
        Xs, y = self._prepare(X, y)
        n, d = Xs.shape
        y_mean = y.mean(axis=0)
        yc = y - y_mean
        gram = Xs.T @ Xs + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, Xs.T @ yc)
        self.intercept_ = y_mean
        return self


class LassoRegressor(_StandardizedLinear):
    """L1-regularized least squares via cyclic coordinate descent."""

    def __init__(
        self, alpha: float = 0.1, max_iter: int = 1000, tol: float = 1e-8
    ) -> None:
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.n_iter_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LassoRegressor":
        Xs, y = self._prepare(X, y)
        n, d = Xs.shape
        y_mean = y.mean(axis=0)
        yc = y - y_mean
        k = yc.shape[1]
        w = np.zeros((d, k))
        col_sq = (Xs**2).sum(axis=0)
        col_sq[col_sq == 0] = 1.0
        lam = self.alpha * n  # scale threshold with sample count
        resid = yc.copy()  # resid = yc - Xs @ w, maintained incrementally
        for it in range(self.max_iter):
            max_delta = 0.0
            for jf in range(d):
                xj = Xs[:, jf]
                rho = xj @ resid + col_sq[jf] * w[jf]
                new = np.sign(rho) * np.maximum(np.abs(rho) - lam, 0.0) / col_sq[jf]
                delta = new - w[jf]
                if np.any(delta):
                    resid -= np.outer(xj, delta)
                    w[jf] = new
                    max_delta = max(max_delta, float(np.abs(delta).max()))
            if max_delta < self.tol:
                break
        self.n_iter_ = it + 1
        self.coef_ = w
        self.intercept_ = y_mean
        return self
