"""Regression metrics used in paper §VI (MAPE and R²)."""

from __future__ import annotations

import numpy as np


def mape(y_true: np.ndarray, y_pred: np.ndarray, eps: float = 1e-12) -> float:
    """Mean absolute percentage error, as a fraction (paper reports 0.19).

    Averaged over all outputs for multi-target regression.  Targets of
    exactly zero are guarded by ``eps``.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    denom = np.maximum(np.abs(y_true), eps)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; multi-output variance-weighted.

    1 is perfect, 0 matches predicting the mean, negative is worse than
    the mean predictor.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    ss_res = np.sum((y_true - y_pred) ** 2)
    ss_tot = np.sum((y_true - y_true.mean(axis=0)) ** 2)
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return float(1.0 - ss_res / ss_tot)
