"""Random-forest regressor: bagged CART trees with feature subsampling.

The paper's best model (§VI): 100 trees, max depth 20, MAPE 0.19 /
R² 0.88 on its dataset.
"""

from __future__ import annotations

import numpy as np

from repro.predict.models.tree import DecisionTreeRegressor
from repro.util.rng import as_generator


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees.

    Parameters
    ----------
    n_estimators:
        Tree count (paper: 100).
    max_depth:
        Per-tree depth cap (paper: 20).
    max_features:
        Features per split (default ``"sqrt"`` decorrelates trees).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 20,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = as_generator(seed)
        self.trees_: list[DecisionTreeRegressor] = []
        self.n_outputs_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        n = len(X)
        if n == 0:
            raise ValueError("empty training set")
        self.n_outputs_ = y.shape[1]
        self.trees_ = []
        for child in self.rng.spawn(self.n_estimators):
            boot = child.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=child,
            )
            tree.fit(X[boot], y[boot])
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        preds = []
        for t in self.trees_:
            p = t.predict(X)
            preds.append(p[:, None] if p.ndim == 1 else p)
        out = np.mean(preds, axis=0)
        return out[:, 0] if self.n_outputs_ == 1 else out
