"""ML parameter prediction (paper §VI).

Grid sweeps over ``(P', alpha)``, the Eq. 7 bi-objective, from-scratch
regressors (ridge / lasso / CART / random forest) and the end-to-end
:class:`PaletteParamsPredictor`.
"""

from repro.predict.dataset import PredictorDataset, build_dataset
from repro.predict.models import (
    DecisionTreeRegressor,
    LassoRegressor,
    RandomForestRegressor,
    RidgeRegressor,
    mape,
    r2_score,
)
from repro.predict.predictor import PaletteParamsPredictor, compare_models
from repro.predict.sweep import (
    DEFAULT_ALPHAS,
    DEFAULT_BETAS,
    DEFAULT_PALETTE_PERCENTS,
    SweepPoint,
    normalize_objectives,
    objective,
    optimal_frontier,
    optimal_point,
    run_sweep,
)

__all__ = [
    "PredictorDataset",
    "build_dataset",
    "DecisionTreeRegressor",
    "LassoRegressor",
    "RandomForestRegressor",
    "RidgeRegressor",
    "mape",
    "r2_score",
    "PaletteParamsPredictor",
    "compare_models",
    "DEFAULT_ALPHAS",
    "DEFAULT_BETAS",
    "DEFAULT_PALETTE_PERCENTS",
    "SweepPoint",
    "normalize_objectives",
    "objective",
    "optimal_frontier",
    "optimal_point",
    "run_sweep",
]
