"""End-to-end parameter predictor (paper §VI Steps 5–6).

Train a regressor on sweep-derived optima; at deployment, hand it a new
input's ``(beta, |V|, |E|)`` and receive the recommended
``(palette_percent, alpha)`` — clamped back onto valid ranges — ready
to drop into :class:`repro.core.PicassoParams`.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import PicassoParams
from repro.predict.dataset import PredictorDataset
from repro.predict.models import (
    DecisionTreeRegressor,
    LassoRegressor,
    RandomForestRegressor,
    RidgeRegressor,
    mape,
    r2_score,
)

_MODEL_REGISTRY = {
    "ridge": lambda seed: RidgeRegressor(alpha=1.0),
    "lasso": lambda seed: LassoRegressor(alpha=0.01),
    "tree": lambda seed: DecisionTreeRegressor(max_depth=20, seed=seed),
    "forest": lambda seed: RandomForestRegressor(
        n_estimators=100, max_depth=20, seed=seed
    ),
}


class PaletteParamsPredictor:
    """Predict ``(P', alpha)`` from ``(beta, |V|, |E|)``.

    Parameters
    ----------
    model:
        ``"forest"`` (paper's best), ``"tree"``, ``"ridge"`` or
        ``"lasso"``.
    """

    def __init__(self, model: str = "forest", seed: int = 0) -> None:
        if model not in _MODEL_REGISTRY:
            raise ValueError(
                f"unknown model {model!r}; expected one of {sorted(_MODEL_REGISTRY)}"
            )
        self.model_name = model
        self._model = _MODEL_REGISTRY[model](seed)
        self._fitted = False

    @staticmethod
    def _features(X: np.ndarray) -> np.ndarray:
        """Log-scale the size features: |V| and |E| span decades."""
        X = np.asarray(X, dtype=np.float64)
        out = X.copy()
        out[:, 1] = np.log10(np.maximum(X[:, 1], 1.0))
        out[:, 2] = np.log10(np.maximum(X[:, 2], 1.0))
        return out

    def fit(self, dataset: PredictorDataset) -> "PaletteParamsPredictor":
        self._model.fit(self._features(dataset.X), dataset.y)
        self._fitted = True
        return self

    def predict_raw(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("predictor is not fitted")
        pred = self._model.predict(self._features(X))
        return np.atleast_2d(pred)

    def predict(
        self, beta: float, n_vertices: int, n_edges: int
    ) -> tuple[float, float]:
        """Recommended ``(palette_percent, alpha)`` for one input."""
        pred = self.predict_raw(
            np.array([[beta, float(n_vertices), float(n_edges)]])
        )[0]
        palette_percent = float(np.clip(pred[0], 0.5, 100.0))
        alpha = float(np.clip(pred[1], 0.25, 64.0))
        return palette_percent, alpha

    def predict_params(
        self, beta: float, n_vertices: int, n_edges: int, **overrides
    ) -> PicassoParams:
        """Directly produce :class:`PicassoParams` for a new input."""
        pp, alpha = self.predict(beta, n_vertices, n_edges)
        return PicassoParams(
            palette_fraction=pp / 100.0, alpha=alpha
        ).with_(**overrides)

    def evaluate(self, dataset: PredictorDataset) -> dict[str, float]:
        """MAPE and R² on a held-out dataset (the paper's metrics)."""
        pred = self.predict_raw(dataset.X)
        return {
            "mape": mape(dataset.y, pred),
            "r2": r2_score(dataset.y, pred),
        }


def compare_models(
    train: PredictorDataset,
    test: PredictorDataset,
    models: tuple[str, ...] = ("ridge", "lasso", "tree", "forest"),
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Fit every registered model and report held-out metrics — the
    §VI model-selection experiment."""
    out = {}
    for name in models:
        predictor = PaletteParamsPredictor(model=name, seed=seed).fit(train)
        out[name] = predictor.evaluate(test)
    return out
