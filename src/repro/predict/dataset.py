"""Training-set construction for the parameter predictor (§VI Steps 3–4).

Each training row maps input features ``(beta, |V|, |E|)`` to the
sweep-optimal targets ``(P', alpha)``.  ``|E|`` is the complement-graph
edge count, computed by streaming (never materializing the graph).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.build import complement_edge_count
from repro.pauli.strings import PauliSet
from repro.predict.sweep import (
    DEFAULT_ALPHAS,
    DEFAULT_BETAS,
    DEFAULT_PALETTE_PERCENTS,
    optimal_frontier,
    run_sweep,
)


@dataclass
class PredictorDataset:
    """Feature matrix ``X = (beta, n_vertices, n_edges)`` and target
    matrix ``y = (palette_percent, alpha)``, with input provenance."""

    X: np.ndarray
    y: np.ndarray
    input_names: list[str]

    def __len__(self) -> int:
        return len(self.X)

    def split_by_input(
        self, test_names: set[str]
    ) -> tuple["PredictorDataset", "PredictorDataset"]:
        """Train/test split by *molecule*, as the paper does (first five
        train, last two test) — row-level splits would leak."""
        names = np.array(self.input_names)
        test_mask = np.isin(names, list(test_names))
        return (
            PredictorDataset(
                self.X[~test_mask], self.y[~test_mask], names[~test_mask].tolist()
            ),
            PredictorDataset(
                self.X[test_mask], self.y[test_mask], names[test_mask].tolist()
            ),
        )


def build_dataset(
    pauli_sets: list[PauliSet],
    palette_percents=DEFAULT_PALETTE_PERCENTS,
    alphas=DEFAULT_ALPHAS,
    betas=DEFAULT_BETAS,
    seed: int = 0,
) -> PredictorDataset:
    """Steps 1-4: sweep every input, harvest per-beta optima."""
    rows_x, rows_y, names = [], [], []
    for ps in pauli_sets:
        n_edges = complement_edge_count(ps)
        points = run_sweep(
            ps, palette_percents=palette_percents, alphas=alphas, seed=seed
        )
        for beta, best in optimal_frontier(points, betas):
            rows_x.append([beta, float(ps.n), float(n_edges)])
            rows_y.append([best.palette_percent, best.alpha])
            names.append(ps.name or f"input_{len(names)}")
    return PredictorDataset(
        X=np.array(rows_x, dtype=np.float64),
        y=np.array(rows_y, dtype=np.float64),
        input_names=names,
    )
