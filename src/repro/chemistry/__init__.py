"""Quantum-chemistry substrate (paper §II-A, Table II workloads).

A self-contained replacement for the OpenFermion pipeline: Hn cluster
geometries, synthetic (structure-preserving) integrals, second
quantization, and the Jordan–Wigner / Bravyi–Kitaev fermion-to-qubit
transforms, ending in a :class:`repro.pauli.PauliSet`.
"""

from repro.chemistry.bravyi_kitaev import (
    bravyi_kitaev,
    bravyi_kitaev_ladder,
    flip_set,
    parity_set,
    update_set,
)
from repro.chemistry.fermion import FermionOperator
from repro.chemistry.geometry import (
    BASIS_FUNCTIONS_PER_H,
    Geometry,
    hydrogen_cluster,
)
from repro.chemistry.hamiltonian import (
    hn_pauli_set,
    molecular_pauli_set,
    molecular_qubit_operator,
    spin_orbital_hamiltonian,
)
from repro.chemistry.integrals import IntegralSet, check_symmetries, synthetic_integrals
from repro.chemistry.jordan_wigner import jordan_wigner, jordan_wigner_ladder
from repro.chemistry.parity import parity_ladder, parity_transform
from repro.chemistry.qubit_operator import QubitOperator
from repro.chemistry.tapering import (
    TaperingResult,
    all_sectors,
    find_z2_symmetries,
    taper_qubits,
)

__all__ = [
    "bravyi_kitaev",
    "bravyi_kitaev_ladder",
    "flip_set",
    "parity_set",
    "update_set",
    "FermionOperator",
    "BASIS_FUNCTIONS_PER_H",
    "Geometry",
    "hydrogen_cluster",
    "hn_pauli_set",
    "molecular_pauli_set",
    "molecular_qubit_operator",
    "spin_orbital_hamiltonian",
    "IntegralSet",
    "check_symmetries",
    "synthetic_integrals",
    "jordan_wigner",
    "jordan_wigner_ladder",
    "parity_ladder",
    "parity_transform",
    "QubitOperator",
    "TaperingResult",
    "all_sectors",
    "find_z2_symmetries",
    "taper_qubits",
]
