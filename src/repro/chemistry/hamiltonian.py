"""Molecular-Hamiltonian assembly: geometry -> integrals -> Pauli set.

The end-to-end pipeline of paper §II-A:

1. lay out an Hn cluster (:mod:`repro.chemistry.geometry`);
2. generate structure-preserving synthetic integrals
   (:mod:`repro.chemistry.integrals`);
3. lift spatial integrals to spin orbitals and build the
   second-quantized Hamiltonian

   .. math::

      H = \\sum_{pq} h_{pq} a^†_p a_q
        + \\tfrac12 \\sum_{(ij|kl)} \\sum_{σ,τ}
          (ij|kl)\\, a^†_{iσ} a^†_{kτ} a_{lτ} a_{jσ}

4. map to qubits with Jordan–Wigner (or Bravyi–Kitaev) and export the
   surviving Pauli strings as a :class:`repro.pauli.PauliSet`.

Spin orbitals are interleaved (``2p`` = spin-up of spatial ``p``,
``2p+1`` = spin-down), the OpenFermion convention.
"""

from __future__ import annotations

import numpy as np

from repro.chemistry.bravyi_kitaev import bravyi_kitaev
from repro.chemistry.fermion import FermionOperator
from repro.chemistry.geometry import Geometry, hydrogen_cluster
from repro.chemistry.integrals import IntegralSet, synthetic_integrals
from repro.chemistry.jordan_wigner import jordan_wigner
from repro.chemistry.qubit_operator import QubitOperator
from repro.pauli.strings import PauliSet


def spin_orbital_hamiltonian(integrals: IntegralSet) -> FermionOperator:
    """Second-quantized Hamiltonian over interleaved spin orbitals."""
    h = integrals.one_body
    n_spatial = integrals.n_spatial
    ham = FermionOperator.zero()
    acc = ham.terms

    # One-body block, both spins.
    for p in range(n_spatial):
        for q in range(n_spatial):
            if abs(h[p, q]) < 1e-14:
                continue
            for s in (0, 1):
                t = ((2 * p + s, True), (2 * q + s, False))
                acc[t] = acc.get(t, 0) + h[p, q]

    # Two-body block: 1/2 (ij|kl) a†_{iσ} a†_{kτ} a_{lτ} a_{jσ}.
    idx = integrals.two_body_indices
    vals = integrals.two_body_values
    for (i, j, k, l), v in zip(idx.tolist(), vals.tolist()):
        for s1 in (0, 1):
            for s2 in (0, 1):
                a, b = 2 * i + s1, 2 * k + s2
                c, d = 2 * l + s2, 2 * j + s1
                if a == b or c == d:
                    continue  # a†a† / aa of same spin orbital vanish
                t = ((a, True), (b, True), (c, False), (d, False))
                acc[t] = acc.get(t, 0) + 0.5 * v
    return ham


def molecular_qubit_operator(
    geometry: Geometry,
    transform: str = "jordan_wigner",
    cutoff: float = 1e-8,
    **integral_kwargs,
) -> QubitOperator:
    """Qubit operator for a geometry (full pipeline minus PauliSet export)."""
    integrals = synthetic_integrals(geometry, **integral_kwargs)
    ham = spin_orbital_hamiltonian(integrals)
    if transform == "jordan_wigner":
        qop = jordan_wigner(ham)
    elif transform == "bravyi_kitaev":
        qop = bravyi_kitaev(ham, n_modes=geometry.n_spin_orbitals)
    elif transform == "parity":
        from repro.chemistry.parity import parity_transform

        qop = parity_transform(ham, n_modes=geometry.n_spin_orbitals)
    else:
        raise ValueError(f"unknown transform {transform!r}")
    return qop.compress(cutoff)


def molecular_pauli_set(
    geometry: Geometry,
    transform: str = "jordan_wigner",
    cutoff: float = 1e-8,
    drop_identity: bool = True,
    **integral_kwargs,
) -> PauliSet:
    """Full pipeline: geometry -> :class:`PauliSet` ready for coloring.

    The identity string is dropped by default (it trivially commutes
    with everything; the paper's Fig. 1 keeps it as P0, so pass
    ``drop_identity=False`` to reproduce that walkthrough exactly).
    """
    qop = molecular_qubit_operator(geometry, transform, cutoff, **integral_kwargs)
    chars, coeffs = qop.to_char_matrix(geometry.n_spin_orbitals)
    tag = {"jordan_wigner": "jw", "bravyi_kitaev": "bk", "parity": "pa"}[transform]
    ps = PauliSet(chars, coeffs, name=f"{geometry.name}_{tag}")
    ps = ps.dedupe()
    if drop_identity:
        ps = ps.drop_identity()
    return ps


def hn_pauli_set(
    n_atoms: int,
    dimensionality: int,
    basis: str = "sto3g",
    transform: str = "jordan_wigner",
    **kwargs,
) -> PauliSet:
    """Convenience: Hn cluster straight to :class:`PauliSet`."""
    geom = hydrogen_cluster(n_atoms, dimensionality, basis)
    return molecular_pauli_set(geom, transform, **kwargs)
