"""Qubit tapering via Z2 symmetries (Bravyi–Gosset–König–Temme).

The paper's conclusion highlights that Picasso's machinery "can be
adeptly employed in qubit tapering, thereby reducing the effective
number of qubits".  This module implements that application end to end:

1. **Symmetry finding** — a Pauli string ``S = (x_s | z_s)`` commutes
   with every Hamiltonian term ``t = (x_t | z_t)`` iff the symplectic
   products ``<x_s, z_t> + <z_s, x_t>`` all vanish mod 2; the symmetry
   group is therefore the GF(2) kernel of the terms' parity-check
   matrix with halves swapped.
2. **Clifford rotation** — each independent generator ``tau_i`` is
   paired with a qubit ``q_i`` where it anticommutes with ``X_{q_i}``;
   the (Hermitian, unitary) operator ``U_i = (X_{q_i} + tau_i)/sqrt(2)``
   maps ``tau_i`` to ``X_{q_i}`` under conjugation.
3. **Substitution** — after all rotations the Hamiltonian acts on each
   tapered qubit only through ``I`` or ``X``; fixing the symmetry
   sector replaces that ``X`` by an eigenvalue in {+1, -1} and the
   qubit is removed.

Correctness property (tested): the tapered Hamiltonians over all
2^k sectors jointly carry the complete spectrum of the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.chemistry.qubit_operator import QubitOperator
from repro.util.gf2 import gf2_nullspace, gf2_row_reduce


def _terms_to_symplectic(qop: QubitOperator, n_qubits: int) -> np.ndarray:
    """``(n_terms, 2 n_qubits)`` binary matrix, rows ``(x | z)``."""
    rows = []
    for term in qop.terms:
        x = np.zeros(n_qubits, dtype=np.uint8)
        z = np.zeros(n_qubits, dtype=np.uint8)
        for q, p in term:
            if p in ("X", "Y"):
                x[q] = 1
            if p in ("Z", "Y"):
                z[q] = 1
        rows.append(np.concatenate([x, z]))
    return (
        np.array(rows, dtype=np.uint8)
        if rows
        else np.zeros((0, 2 * n_qubits), dtype=np.uint8)
    )


def _symplectic_to_operator(vec: np.ndarray, n_qubits: int) -> QubitOperator:
    """Single Pauli string from an ``(x | z)`` vector."""
    x, z = vec[:n_qubits], vec[n_qubits:]
    term = []
    for q in range(n_qubits):
        if x[q] and z[q]:
            term.append((q, "Y"))
        elif x[q]:
            term.append((q, "X"))
        elif z[q]:
            term.append((q, "Z"))
    return QubitOperator(tuple(term), 1.0)


def find_z2_symmetries(qop: QubitOperator, n_qubits: int) -> list[QubitOperator]:
    """Independent Z2 symmetry generators of ``qop``.

    Returns single-string :class:`QubitOperator` generators (identity
    excluded), each commuting with every term of ``qop``.
    """
    E = _terms_to_symplectic(qop, n_qubits)
    # Symplectic form: swap the x/z halves of the term matrix.
    swapped = np.concatenate([E[:, n_qubits:], E[:, :n_qubits]], axis=1)
    kernel = gf2_nullspace(swapped)
    generators = []
    for vec in kernel:
        if vec.any():
            generators.append(_symplectic_to_operator(vec, n_qubits))
    return generators


@dataclass
class TaperingResult:
    """Output of :func:`taper_qubits` for one symmetry sector."""

    operator: QubitOperator
    removed_qubits: list[int]
    sector: tuple[int, ...]
    n_qubits_before: int

    @property
    def n_qubits_after(self) -> int:
        return self.n_qubits_before - len(self.removed_qubits)


def _operator_to_symplectic(g: QubitOperator, n_qubits: int) -> np.ndarray:
    """Inverse of :func:`_symplectic_to_operator` for single-term ops."""
    if g.n_terms != 1:
        raise ValueError("symmetry generators must be single Pauli strings")
    return _terms_to_symplectic(g, n_qubits)[0]


def _reduce_generators(
    vectors: np.ndarray, n_qubits: int
) -> tuple[np.ndarray, list[int]]:
    """Gaussian-eliminate the generator vectors on their z-columns so
    each carries a distinct pivot qubit with Z/Y support.

    XOR of kernel vectors stays in the kernel (products of symmetries
    are symmetries, up to phase, which sector enumeration absorbs), so
    row operations are legal.  Returns (reduced vectors, pivot qubits),
    index-aligned.
    """
    vecs = vectors.copy()
    k = len(vecs)
    pivots: list[int] = []
    row = 0
    for q in range(n_qubits):
        zc = n_qubits + q
        hit = [r for r in range(row, k) if vecs[r, zc]]
        if not hit:
            continue
        if hit[0] != row:
            vecs[[row, hit[0]]] = vecs[[hit[0], row]]
        for r in range(k):
            if r != row and vecs[r, zc]:
                vecs[r] ^= vecs[row]
        pivots.append(q)
        row += 1
        if row == k:
            break
    if row < k:
        raise ValueError(
            "generators do not admit distinct Z-support pivots; "
            "pre-rotate X-type symmetries first"
        )
    return vecs, pivots


def taper_qubits(
    qop: QubitOperator,
    n_qubits: int,
    generators: list[QubitOperator] | None = None,
    sector: tuple[int, ...] | None = None,
) -> TaperingResult:
    """Taper one qubit per symmetry generator.

    Parameters
    ----------
    generators:
        Defaults to :func:`find_z2_symmetries` output.  Generators are
        re-derived into an independent pivot set internally.
    sector:
        ``+1 / -1`` eigenvalue per generator; defaults to all ``+1``.

    Returns
    -------
    :class:`TaperingResult` with the reduced-qubit operator (qubit
    indices compacted to ``0..n_after-1``).
    """
    if generators is None:
        generators = find_z2_symmetries(qop, n_qubits)
    if not generators:
        return TaperingResult(qop.copy(), [], (), n_qubits)
    if sector is None:
        sector = tuple(1 for _ in generators)
    if len(sector) != len(generators) or any(s not in (-1, 1) for s in sector):
        raise ValueError("sector must be a +/-1 tuple matching the generators")

    vectors = np.stack(
        [_operator_to_symplectic(g, n_qubits) for g in generators]
    )
    reduced, pivots = _reduce_generators(vectors, n_qubits)
    taus = [_symplectic_to_operator(v, n_qubits) for v in reduced]

    # Clifford-rotate: U = (X_q + tau)/sqrt(2); H -> U H U.
    rotated = qop.copy()
    inv_sqrt2 = 1.0 / np.sqrt(2.0)
    for g, q in zip(taus, pivots):
        u = (QubitOperator(((q, "X"),), 1.0) + g) * inv_sqrt2
        rotated = (u * rotated * u).compress(1e-12)

    # After rotation every term must touch pivot qubits with I or X only.
    for term in rotated.terms:
        for q, p in term:
            if q in pivots and p != "X":
                raise AssertionError(
                    f"tapering failed: residual {p} on pivot qubit {q}"
                )

    # Substitute eigenvalues and delete the pivot qubits.
    eigen = dict(zip(pivots, sector))
    keep = [q for q in range(n_qubits) if q not in eigen]
    remap = {q: i for i, q in enumerate(keep)}
    out = QubitOperator.zero()
    for term, coeff in rotated.terms.items():
        phase = 1.0
        new_term = []
        for q, p in term:
            if q in eigen:
                phase *= eigen[q]  # p is guaranteed to be X here
            else:
                new_term.append((remap[q], p))
        key = tuple(sorted(new_term))
        out.terms[key] = out.terms.get(key, 0) + phase * coeff
    out.compress(1e-12)
    return TaperingResult(
        operator=out,
        removed_qubits=sorted(eigen),
        sector=tuple(sector),
        n_qubits_before=n_qubits,
    )


def all_sectors(
    qop: QubitOperator,
    n_qubits: int,
    generators: list[QubitOperator] | None = None,
) -> list[TaperingResult]:
    """Taper into every symmetry sector (2^k results)."""
    if generators is None:
        generators = find_z2_symmetries(qop, n_qubits)
    if not generators:
        return [taper_qubits(qop, n_qubits, generators=[])]
    return [
        taper_qubits(qop, n_qubits, generators=generators, sector=s)
        for s in product((1, -1), repeat=len(generators))
    ]
