"""Hydrogen-cluster geometries (Table II workload shapes).

The paper's dataset is the Hn family (n = 4, 6, 8, 10) in three spatial
configurations — 1D chains, 2D grids and 3D lattices — across three
basis sets (sto3g, 631g, 6311g).  Geometry controls the distance
structure of the synthetic integrals, which in turn controls the
sparsity pattern of the resulting Pauli set; the 1D/2D/3D split is what
gives the paper its "dimensional variability".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Spatial basis functions per hydrogen atom for each supported basis.
#: (sto-3g: minimal single-zeta; 6-31g: double-zeta; 6-311g: triple-zeta.)
BASIS_FUNCTIONS_PER_H = {"sto3g": 1, "631g": 2, "6311g": 3}

#: Relative diffuseness of successive zeta shells (arbitrary units used
#: by the synthetic integral model; larger = more diffuse = slower
#: distance decay).
SHELL_SCALES = (1.0, 1.8, 3.0)


@dataclass(frozen=True)
class Geometry:
    """Atom positions plus per-orbital metadata.

    Attributes
    ----------
    positions:
        ``(n_atoms, 3)`` Cartesian coordinates (bohr-like arbitrary units).
    basis:
        Basis-set label, key of :data:`BASIS_FUNCTIONS_PER_H`.
    name:
        Human-readable label, e.g. ``"H6_2D_sto3g"``.
    """

    positions: np.ndarray
    basis: str
    name: str

    @property
    def n_atoms(self) -> int:
        return self.positions.shape[0]

    @property
    def n_spatial_orbitals(self) -> int:
        """Spatial orbitals = atoms x basis functions per atom."""
        return self.n_atoms * BASIS_FUNCTIONS_PER_H[self.basis]

    @property
    def n_spin_orbitals(self) -> int:
        """Qubit count under JW/BK: two spin orbitals per spatial one."""
        return 2 * self.n_spatial_orbitals

    def orbital_centers(self) -> np.ndarray:
        """``(n_spatial, 3)`` position of each spatial orbital's atom."""
        k = BASIS_FUNCTIONS_PER_H[self.basis]
        return np.repeat(self.positions, k, axis=0)

    def orbital_scales(self) -> np.ndarray:
        """``(n_spatial,)`` shell diffuseness of each spatial orbital."""
        k = BASIS_FUNCTIONS_PER_H[self.basis]
        return np.tile(np.array(SHELL_SCALES[:k]), self.n_atoms)


#: Hand-placed 3-D unit layouts for atom counts whose integer grids
#: would degenerate to 2-D slabs (scaled by bond length).  Without
#: these, e.g. H4 "3D" would collapse onto the H4 2D square and the
#: suite would lose the paper's dimensional variability.
_POLYHEDRA = {
    4: [  # regular tetrahedron
        (0.0, 0.0, 0.0),
        (1.0, 1.0, 0.0),
        (1.0, 0.0, 1.0),
        (0.0, 1.0, 1.0),
    ],
    6: [  # regular octahedron
        (1.0, 0.0, 0.0),
        (-1.0, 0.0, 0.0),
        (0.0, 1.0, 0.0),
        (0.0, -1.0, 0.0),
        (0.0, 0.0, 1.0),
        (0.0, 0.0, -1.0),
    ],
    10: [  # 2x2x2 cube + caps on two opposite faces
        (0.0, 0.0, 0.0),
        (1.0, 0.0, 0.0),
        (0.0, 1.0, 0.0),
        (1.0, 1.0, 0.0),
        (0.0, 0.0, 1.0),
        (1.0, 0.0, 1.0),
        (0.0, 1.0, 1.0),
        (1.0, 1.0, 1.0),
        (0.5, 0.5, -0.8),
        (0.5, 0.5, 1.8),
    ],
}


def _grid_dims(n: int, ndim: int) -> tuple[int, ...]:
    """Near-cubic factorization of ``n`` atoms into an ``ndim`` grid."""
    if ndim == 1:
        return (n,)
    if ndim == 2:
        w = max(1, round(math.sqrt(n)))
        while n % w:
            w -= 1
        return (w, n // w)
    # 3-D: peel one near-cubic factor then recurse on 2-D.
    d = max(1, round(n ** (1.0 / 3.0)))
    while n % d:
        d -= 1
    rest = _grid_dims(n // d, 2)
    return (d, *rest)


def hydrogen_cluster(
    n_atoms: int,
    dimensionality: int,
    basis: str = "sto3g",
    bond_length: float = 1.4,
) -> Geometry:
    """Build an Hn cluster in 1, 2 or 3 dimensions.

    ``dimensionality=1`` gives a chain, 2 a rectangular grid, 3 a
    cuboidal lattice (falling back to flatter shapes when ``n_atoms``
    lacks the factors, as a real benchmark generator would).

    Parameters
    ----------
    n_atoms:
        Number of hydrogen atoms (n in Hn).
    dimensionality:
        1, 2 or 3.
    basis:
        One of ``"sto3g"``, ``"631g"``, ``"6311g"``.
    bond_length:
        Nearest-neighbour spacing.
    """
    if dimensionality not in (1, 2, 3):
        raise ValueError("dimensionality must be 1, 2 or 3")
    if basis not in BASIS_FUNCTIONS_PER_H:
        raise ValueError(
            f"unknown basis {basis!r}; expected one of {sorted(BASIS_FUNCTIONS_PER_H)}"
        )
    if n_atoms < 1:
        raise ValueError("n_atoms must be positive")
    name = f"H{n_atoms}_{dimensionality}D_{basis}"
    if dimensionality == 3 and n_atoms in _POLYHEDRA:
        positions = np.array(_POLYHEDRA[n_atoms], dtype=np.float64) * bond_length
        return Geometry(positions=positions, basis=basis, name=name)
    dims = _grid_dims(n_atoms, dimensionality)
    grids = np.meshgrid(*[np.arange(d) for d in dims], indexing="ij")
    coords = np.stack([g.ravel() for g in grids], axis=1).astype(np.float64)
    positions = np.zeros((n_atoms, 3))
    positions[:, : coords.shape[1]] = coords * bond_length
    return Geometry(positions=positions, basis=basis, name=name)
