"""Synthetic electronic-structure integrals.

The paper generates its Pauli sets from real quantum-chemistry
integrals (via an OpenFermion-style pipeline).  Offline we cannot run a
Hartree–Fock code, so we substitute a *structure-preserving* synthetic
model (documented in DESIGN.md §2):

- one-body ``h[p, q]``: symmetric, decaying exponentially with the
  distance between orbital centers, scaled by shell diffuseness —
  exactly the qualitative shape of kinetic + nuclear-attraction
  integrals over localized basis functions;
- two-body ``v[p, q, r, s]`` in chemist notation ``(pq|rs)``: a product
  of two "charge-distribution overlap" factors and a Coulomb-like decay
  between their centroids.  The product form guarantees the full 8-fold
  permutation symmetry of real-valued integrals, which is what makes
  the resulting Hamiltonian Hermitian with *real* Pauli coefficients.

What the coloring pipeline consumes is only the *support pattern* of
the resulting Pauli strings, and that is fixed by which integrals
survive the cutoff — i.e. by geometry, basis cardinality and decay —
not by the precise values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chemistry.geometry import Geometry


@dataclass(frozen=True)
class IntegralSet:
    """One- and two-electron integrals over spatial orbitals.

    ``two_body`` is stored sparsely as ``(indices, values)`` where
    ``indices`` is ``(m, 4)`` of ``(p, q, r, s)`` in chemist notation
    ``(pq|rs)`` and only entries above the cutoff are kept.
    """

    one_body: np.ndarray
    two_body_indices: np.ndarray
    two_body_values: np.ndarray
    n_spatial: int

    @property
    def n_two_body(self) -> int:
        return self.two_body_values.shape[0]


def synthetic_integrals(
    geometry: Geometry,
    hopping: float = 1.0,
    onsite: float = -1.2,
    coulomb: float = 0.9,
    decay: float = 1.1,
    cutoff: float = 1e-6,
) -> IntegralSet:
    """Generate the synthetic integral set for a geometry.

    Parameters
    ----------
    geometry:
        Orbital centers and shell scales come from here.
    hopping, onsite:
        One-body scale parameters (off-diagonal decay amplitude and
        diagonal orbital energy).
    coulomb:
        Two-body amplitude.
    decay:
        Exponential length scale; larger keeps more distant pairs.
    cutoff:
        Two-body entries with ``|v| < cutoff`` are dropped — the knob
        that makes bigger bases produce the paper's O(N^4) term growth
        while keeping the set finite.
    """
    centers = geometry.orbital_centers()
    scales = geometry.orbital_scales()
    n = centers.shape[0]

    # Pairwise distances and combined shell scales.
    diff = centers[:, None, :] - centers[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    sigma = scales[:, None] + scales[None, :]

    # One-body: symmetric exponential decay, diagonal shifted by shell.
    h = -hopping * np.exp(-dist / (decay * sigma))
    h[np.diag_indices(n)] = onsite / scales  # tighter shells bind deeper

    # Two-body (pq|rs) = g[p,q] * g[r,s] * coulomb-like coupling between
    # the centroids of distributions (p,q) and (r,s).
    g = np.exp(-(dist**2) / (2.0 * decay * sigma))  # overlap of p,q
    centroid = 0.5 * (centers[:, None, :] + centers[None, :, :])  # (n,n,3)

    # Enumerate candidate (p,q) pairs whose overlap survives; the
    # four-index tensor is then outer-producted from surviving pairs.
    pq_mask = g > np.sqrt(cutoff) / max(coulomb, 1e-12)
    pi, qi = np.nonzero(pq_mask)
    gpq = g[pi, qi]
    cpq = centroid[pi, qi]

    # Coulomb factor between charge distributions: 1 / (1 + d) decay.
    d_ab = np.sqrt(
        ((cpq[:, None, :] - cpq[None, :, :]) ** 2).sum(axis=2)
    )
    vals = coulomb * np.outer(gpq, gpq) / (1.0 + d_ab)

    keep_a, keep_b = np.nonzero(np.abs(vals) >= cutoff)
    indices = np.stack(
        [pi[keep_a], qi[keep_a], pi[keep_b], qi[keep_b]], axis=1
    ).astype(np.int64)
    values = vals[keep_a, keep_b]
    return IntegralSet(
        one_body=h,
        two_body_indices=indices,
        two_body_values=values,
        n_spatial=n,
    )


def check_symmetries(integrals: IntegralSet, atol: float = 1e-12) -> bool:
    """Verify Hermiticity-enabling symmetries of a synthetic integral set.

    One-body must be symmetric; two-body must satisfy
    ``(pq|rs) == (qp|rs) == (pq|sr) == (rs|pq)`` on its support.
    Used by tests; returns True when all hold.
    """
    h = integrals.one_body
    if not np.allclose(h, h.T, atol=atol):
        return False
    lut = {
        tuple(idx): val
        for idx, val in zip(
            integrals.two_body_indices.tolist(), integrals.two_body_values
        )
    }
    for (p, q, r, s), v in lut.items():
        for perm in ((q, p, r, s), (p, q, s, r), (r, s, p, q)):
            if abs(lut.get(perm, 0.0) - v) > atol:
                return False
    return True
