"""Qubit (Pauli) operator algebra.

A :class:`QubitOperator` is a complex linear combination of Pauli
strings, stored as ``{term: coefficient}`` where ``term`` is a sorted
tuple of ``(qubit, 'X'|'Y'|'Z')`` factors (the identity is the empty
tuple).  The API mirrors OpenFermion's class of the same name so the
chemistry pipeline reads familiarly, but the implementation is
self-contained.

Products use the single-qubit Pauli group table

    X·Y = iZ   Y·Z = iX   Z·X = iY   (anti-cyclic order gives −i)
    P·P = I    I·P = P

carried out factor-by-factor on merge-sorted term tuples, so a product
of two length-``k`` terms costs O(k).
"""

from __future__ import annotations

from numbers import Number

import numpy as np

#: Single-qubit product table: (a, b) -> (phase, result); "I" result means
#: the factors cancelled.
_PROD: dict[tuple[str, str], tuple[complex, str]] = {
    ("X", "X"): (1, "I"),
    ("Y", "Y"): (1, "I"),
    ("Z", "Z"): (1, "I"),
    ("X", "Y"): (1j, "Z"),
    ("Y", "X"): (-1j, "Z"),
    ("Y", "Z"): (1j, "X"),
    ("Z", "Y"): (-1j, "X"),
    ("Z", "X"): (1j, "Y"),
    ("X", "Z"): (-1j, "Y"),
}

_PAULI_MATS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

Term = tuple[tuple[int, str], ...]


def _validate_term(term: Term) -> Term:
    """Normalize a term: sorted by qubit, unique qubits, valid letters."""
    seen = set()
    for q, p in term:
        if p not in ("X", "Y", "Z"):
            raise ValueError(f"invalid Pauli letter {p!r}")
        if q < 0:
            raise ValueError(f"negative qubit index {q}")
        if q in seen:
            raise ValueError(f"duplicate qubit {q} in term {term}")
        seen.add(q)
    return tuple(sorted(term))


def _multiply_terms(t1: Term, t2: Term) -> tuple[complex, Term]:
    """Product of two normalized terms: (phase, merged term)."""
    phase: complex = 1
    out: list[tuple[int, str]] = []
    i = j = 0
    while i < len(t1) and j < len(t2):
        q1, p1 = t1[i]
        q2, p2 = t2[j]
        if q1 < q2:
            out.append((q1, p1))
            i += 1
        elif q2 < q1:
            out.append((q2, p2))
            j += 1
        else:
            ph, p = _PROD[(p1, p2)] if p1 != p2 else (1, "I")
            phase *= ph
            if p != "I":
                out.append((q1, p))
            i += 1
            j += 1
    out.extend(t1[i:])
    out.extend(t2[j:])
    return phase, tuple(out)


class QubitOperator:
    """A complex linear combination of Pauli strings.

    Examples
    --------
    >>> op = QubitOperator(((0, "X"), (1, "Y")), 0.5)
    >>> op += QubitOperator((), 1.0)           # identity term
    >>> (op * op).n_terms
    2
    """

    __slots__ = ("terms",)

    def __init__(self, term: Term | None = None, coefficient: complex = 1.0):
        self.terms: dict[Term, complex] = {}
        if term is not None:
            self.terms[_validate_term(tuple(term))] = complex(coefficient)

    # -- constructors --------------------------------------------------

    @classmethod
    def zero(cls) -> "QubitOperator":
        return cls()

    @classmethod
    def identity(cls, coefficient: complex = 1.0) -> "QubitOperator":
        return cls((), coefficient)

    @classmethod
    def from_terms(cls, terms: dict[Term, complex]) -> "QubitOperator":
        op = cls()
        for t, c in terms.items():
            op.terms[_validate_term(t)] = complex(c)
        return op

    # -- inspection -----------------------------------------------------

    @property
    def n_terms(self) -> int:
        return len(self.terms)

    def max_qubit(self) -> int:
        """Highest qubit index touched, or -1 for identity/zero."""
        mq = -1
        for t in self.terms:
            if t:
                mq = max(mq, t[-1][0])
        return mq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QubitOperator):
            return NotImplemented
        keys = set(self.terms) | set(other.terms)
        return all(
            abs(self.terms.get(k, 0) - other.terms.get(k, 0)) < 1e-10 for k in keys
        )

    def __hash__(self):  # pragma: no cover - mutable, defensive
        raise TypeError("QubitOperator is unhashable")

    # -- algebra ---------------------------------------------------------

    def __add__(self, other: "QubitOperator | Number") -> "QubitOperator":
        out = self.copy()
        out += other
        return out

    def __iadd__(self, other: "QubitOperator | Number") -> "QubitOperator":
        if isinstance(other, Number):
            other = QubitOperator.identity(complex(other))
        for t, c in other.terms.items():
            self.terms[t] = self.terms.get(t, 0) + c
        return self

    def __radd__(self, other: Number) -> "QubitOperator":
        return self + other

    def __sub__(self, other: "QubitOperator | Number") -> "QubitOperator":
        return self + (other * -1 if isinstance(other, QubitOperator) else -other)

    def __neg__(self) -> "QubitOperator":
        return self * -1

    def __mul__(self, other: "QubitOperator | Number") -> "QubitOperator":
        if isinstance(other, Number):
            out = QubitOperator()
            out.terms = {t: c * complex(other) for t, c in self.terms.items()}
            return out
        out = QubitOperator()
        acc = out.terms
        for t1, c1 in self.terms.items():
            for t2, c2 in other.terms.items():
                phase, t = _multiply_terms(t1, t2)
                acc[t] = acc.get(t, 0) + phase * c1 * c2
        return out

    def __rmul__(self, other: Number) -> "QubitOperator":
        return self * other

    def hermitian_conjugate(self) -> "QubitOperator":
        """Pauli strings are Hermitian, so this just conjugates coefficients."""
        out = QubitOperator()
        out.terms = {t: c.conjugate() for t, c in self.terms.items()}
        return out

    def copy(self) -> "QubitOperator":
        out = QubitOperator()
        out.terms = dict(self.terms)
        return out

    def compress(self, atol: float = 1e-12) -> "QubitOperator":
        """Drop terms with |coefficient| < atol (in place); returns self."""
        self.terms = {t: c for t, c in self.terms.items() if abs(c) >= atol}
        return self

    def is_hermitian(self, atol: float = 1e-10) -> bool:
        return all(abs(c.imag) < atol for c in self.terms.values())

    # -- conversions -----------------------------------------------------

    def to_matrix(self, n_qubits: int | None = None) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix (tests / tiny systems only)."""
        if n_qubits is None:
            n_qubits = self.max_qubit() + 1
        n_qubits = max(n_qubits, 1)
        if n_qubits > 12:
            raise MemoryError("to_matrix limited to 12 qubits")
        dim = 2**n_qubits
        out = np.zeros((dim, dim), dtype=complex)
        for term, coeff in self.terms.items():
            letters = ["I"] * n_qubits
            for q, p in term:
                if q >= n_qubits:
                    raise ValueError(f"term touches qubit {q} >= n_qubits={n_qubits}")
                letters[q] = p
            m = np.array([[1.0 + 0j]])
            for ch in letters:
                m = np.kron(m, _PAULI_MATS[ch])
            out += coeff * m
        return out

    def to_char_matrix(self, n_qubits: int) -> tuple[np.ndarray, np.ndarray]:
        """Export terms as a ``(n_terms, n_qubits)`` char-code matrix plus
        coefficient vector — the bridge into :class:`repro.pauli.PauliSet`."""
        from repro.pauli.encoding import CHAR_TO_CODE

        chars = np.zeros((len(self.terms), n_qubits), dtype=np.uint8)
        coeffs = np.zeros(len(self.terms), dtype=complex)
        for row, (term, coeff) in enumerate(self.terms.items()):
            for q, p in term:
                if q >= n_qubits:
                    raise ValueError(f"term touches qubit {q} >= n_qubits={n_qubits}")
                chars[row, q] = CHAR_TO_CODE[p]
            coeffs[row] = coeff
        return chars, coeffs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.terms:
            return "QubitOperator(0)"
        parts = []
        for t, c in sorted(self.terms.items())[:4]:
            label = " ".join(f"{p}{q}" for q, p in t) or "I"
            parts.append(f"({c:.4g}) {label}")
        more = f" ... +{len(self.terms) - 4} terms" if len(self.terms) > 4 else ""
        return "QubitOperator(" + " + ".join(parts) + more + ")"
