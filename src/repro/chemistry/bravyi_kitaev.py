"""Bravyi–Kitaev transform (fermion modes -> qubits).

The BK encoding stores *partial parities* in a Fenwick (binary-indexed)
tree so that both occupation lookup and parity update touch only
O(log n) qubits, versus JW's O(n) Z-strings.  We implement the
Seeley–Richard–Love formulation via three index sets per mode ``j``
(1-indexed Fenwick arithmetic with ``lowbit(k) = k & -k``):

- update set ``U(j)``: ancestors of ``j`` — qubits whose stored parity
  ranges contain mode ``j``;
- parity set ``P(j)``: qubits whose XOR gives the parity of modes
  ``[0, j)``;
- flip set ``F(j)``: children of ``j`` — qubits whose XOR with qubit
  ``j`` gives the occupation of mode ``j`` (empty for even ``j``).

Then with ``ρ(j) = P(j)`` for even ``j`` and ``P(j) \\ F(j)`` for odd:

    a†_j = X_{U(j)} ( X_j Z_{P(j)} - i Y_j Z_{ρ(j)} ) / 2
    a_j  = X_{U(j)} ( X_j Z_{P(j)} + i Y_j Z_{ρ(j)} ) / 2

Validated in tests against matrix ground truth (canonical
anticommutation relations and JW isospectrality).
"""

from __future__ import annotations

from functools import lru_cache

from repro.chemistry.fermion import FermionOperator
from repro.chemistry.qubit_operator import QubitOperator


def _lowbit(k: int) -> int:
    return k & -k


def update_set(j: int, n: int) -> frozenset[int]:
    """Ancestor qubits of mode ``j`` (0-indexed) among ``n`` modes."""
    out = set()
    k = j + 1
    k += _lowbit(k)
    while k <= n:
        out.add(k - 1)
        k += _lowbit(k)
    return frozenset(out)


def parity_set(j: int, n: int) -> frozenset[int]:
    """Qubits whose XOR equals the parity of modes ``[0, j)``."""
    out = set()
    k = j
    while k > 0:
        out.add(k - 1)
        k -= _lowbit(k)
    return frozenset(out)


def flip_set(j: int, n: int) -> frozenset[int]:
    """Children qubits of mode ``j`` (XOR with qubit ``j`` = occupation)."""
    out = set()
    k = j + 1
    step = 1
    while step < _lowbit(k):
        out.add(k - step - 1)
        step <<= 1
    return frozenset(out)


@lru_cache(maxsize=4096)
def bravyi_kitaev_ladder(j: int, dagger: bool, n: int) -> QubitOperator:
    """BK image of ``a_j`` / ``a†_j`` over ``n`` modes."""
    if not 0 <= j < n:
        raise ValueError(f"mode {j} out of range for n={n}")
    u = update_set(j, n)
    p = parity_set(j, n)
    f = flip_set(j, n)
    rho = p if (j % 2 == 0) else (p - f)

    x_term = tuple(sorted([(q, "X") for q in u] + [(j, "X")] + [(q, "Z") for q in p]))
    y_term = tuple(sorted([(q, "X") for q in u] + [(j, "Y")] + [(q, "Z") for q in rho]))
    out = QubitOperator(x_term, 0.5)
    out += QubitOperator(y_term, -0.5j if dagger else 0.5j)
    return out


def bravyi_kitaev(op: FermionOperator, n_modes: int | None = None) -> QubitOperator:
    """BK transform of an arbitrary :class:`FermionOperator`."""
    if n_modes is None:
        n_modes = op.max_orbital() + 1
    result = QubitOperator.zero()
    for term, coeff in op.terms.items():
        prod = QubitOperator.identity(coeff)
        for q, d in term:
            prod = prod * bravyi_kitaev_ladder(q, d, n_modes)
        result += prod
    return result.compress()
