"""Jordan–Wigner transform (fermion modes -> qubits).

Standard convention (matching :meth:`FermionOperator.to_matrix`):

    a_p  = Z_0 ... Z_{p-1} (X_p + i Y_p) / 2
    a†_p = Z_0 ... Z_{p-1} (X_p - i Y_p) / 2

Each ladder operator becomes a 2-term :class:`QubitOperator`; products
follow from the Pauli algebra.  Ladder images are cached per mode since
Hamiltonian builds reuse them millions of times.
"""

from __future__ import annotations

from functools import lru_cache

from repro.chemistry.fermion import FermionOperator
from repro.chemistry.qubit_operator import QubitOperator


@lru_cache(maxsize=4096)
def jordan_wigner_ladder(p: int, dagger: bool) -> QubitOperator:
    """JW image of a single ladder operator ``a_p`` / ``a†_p``."""
    zs = tuple((k, "Z") for k in range(p))
    x_term = zs + ((p, "X"),)
    y_term = zs + ((p, "Y"),)
    out = QubitOperator(x_term, 0.5)
    out += QubitOperator(y_term, -0.5j if dagger else 0.5j)
    return out


def jordan_wigner(op: FermionOperator) -> QubitOperator:
    """JW transform of an arbitrary :class:`FermionOperator`."""
    result = QubitOperator.zero()
    for term, coeff in op.terms.items():
        prod = QubitOperator.identity(coeff)
        for q, d in term:
            prod = prod * jordan_wigner_ladder(q, d)
        result += prod
    return result.compress()
