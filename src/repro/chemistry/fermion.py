"""Second-quantized fermionic operators.

A :class:`FermionOperator` is a complex linear combination of products
of creation/annihilation operators, each product stored as a tuple of
``(spin_orbital, is_dagger)`` actions applied left-to-right.  Only the
functionality needed to express molecular Hamiltonians and check their
algebra is implemented: construction, addition, scalar/operator
multiplication, Hermitian conjugation, normal-ordering (using the CAR
``{a_p, a†_q} = δ_pq``), and a dense-matrix export for small systems.
"""

from __future__ import annotations

from numbers import Number

import numpy as np

Action = tuple[int, bool]  # (orbital, True=creation)
FTerm = tuple[Action, ...]


class FermionOperator:
    """Linear combination of ladder-operator products.

    ``FermionOperator(((2, True), (0, False)), 1.5)`` is ``1.5 a†_2 a_0``.
    """

    __slots__ = ("terms",)

    def __init__(self, term: FTerm | None = None, coefficient: complex = 1.0):
        self.terms: dict[FTerm, complex] = {}
        if term is not None:
            term = tuple((int(q), bool(d)) for q, d in term)
            for q, _ in term:
                if q < 0:
                    raise ValueError(f"negative orbital index {q}")
            self.terms[term] = complex(coefficient)

    # -- constructors ---------------------------------------------------

    @classmethod
    def zero(cls) -> "FermionOperator":
        return cls()

    @classmethod
    def identity(cls, coefficient: complex = 1.0) -> "FermionOperator":
        return cls((), coefficient)

    # -- algebra ---------------------------------------------------------

    @property
    def n_terms(self) -> int:
        return len(self.terms)

    def max_orbital(self) -> int:
        mo = -1
        for t in self.terms:
            for q, _ in t:
                mo = max(mo, q)
        return mo

    def copy(self) -> "FermionOperator":
        out = FermionOperator()
        out.terms = dict(self.terms)
        return out

    def __iadd__(self, other: "FermionOperator | Number") -> "FermionOperator":
        if isinstance(other, Number):
            other = FermionOperator.identity(complex(other))
        for t, c in other.terms.items():
            self.terms[t] = self.terms.get(t, 0) + c
        return self

    def __add__(self, other: "FermionOperator | Number") -> "FermionOperator":
        out = self.copy()
        out += other
        return out

    def __radd__(self, other: Number) -> "FermionOperator":
        return self + other

    def __sub__(self, other: "FermionOperator | Number") -> "FermionOperator":
        return self + (other * -1 if isinstance(other, FermionOperator) else -other)

    def __neg__(self) -> "FermionOperator":
        return self * -1

    def __mul__(self, other: "FermionOperator | Number") -> "FermionOperator":
        out = FermionOperator()
        if isinstance(other, Number):
            out.terms = {t: c * complex(other) for t, c in self.terms.items()}
            return out
        acc = out.terms
        for t1, c1 in self.terms.items():
            for t2, c2 in other.terms.items():
                t = t1 + t2
                acc[t] = acc.get(t, 0) + c1 * c2
        return out

    def __rmul__(self, other: Number) -> "FermionOperator":
        return self * other

    def hermitian_conjugate(self) -> "FermionOperator":
        """Reverse each product and flip daggers; conjugate coefficients."""
        out = FermionOperator()
        for t, c in self.terms.items():
            rev = tuple((q, not d) for q, d in reversed(t))
            out.terms[rev] = out.terms.get(rev, 0) + c.conjugate()
        return out

    def is_hermitian(self, atol: float = 1e-10) -> bool:
        """Check H == H† after normal ordering both sides."""
        diff = (self - self.hermitian_conjugate()).normal_ordered()
        return all(abs(c) < atol for c in diff.terms.values())

    def compress(self, atol: float = 1e-12) -> "FermionOperator":
        self.terms = {t: c for t, c in self.terms.items() if abs(c) >= atol}
        return self

    # -- normal ordering ---------------------------------------------------

    def normal_ordered(self) -> "FermionOperator":
        """Rewrite with all creations left of annihilations, descending
        orbital order within each block, using ``{a_p, a†_q} = δ_pq``.

        Canonical form allows term-wise comparison of operators that are
        equal only up to the anticommutation relations.
        """
        out = FermionOperator()
        for term, coeff in self.terms.items():
            for t, c in _normal_order_term(term, coeff):
                out.terms[t] = out.terms.get(t, 0) + c
        return out.compress()

    # -- matrix export ------------------------------------------------------

    def to_matrix(self, n_orbitals: int | None = None) -> np.ndarray:
        """Dense matrix in the full Fock space (tests / tiny systems).

        Jordan–Wigner-consistent convention: orbital ``p`` acts with a
        Z-string on orbitals ``0..p-1``, i.e.
        ``a_p = (Z ⊗)^p ⊗ σ⁻ ⊗ I...`` with qubit 0 the leftmost kron
        factor.  This matches ``QubitOperator.to_matrix`` ordering so JW
        correctness can be asserted matrix-to-matrix.
        """
        if n_orbitals is None:
            n_orbitals = self.max_orbital() + 1
        n_orbitals = max(n_orbitals, 1)
        if n_orbitals > 12:
            raise MemoryError("to_matrix limited to 12 orbitals")
        dim = 2**n_orbitals
        sigma_minus = np.array([[0, 1], [0, 0]], dtype=complex)  # annihilate
        z = np.array([[1, 0], [0, -1]], dtype=complex)
        eye = np.eye(2, dtype=complex)

        def ladder(p: int, dagger: bool) -> np.ndarray:
            m = np.array([[1.0 + 0j]])
            for k in range(n_orbitals):
                if k < p:
                    m = np.kron(m, z)
                elif k == p:
                    op = sigma_minus.conj().T if dagger else sigma_minus
                    m = np.kron(m, op)
                else:
                    m = np.kron(m, eye)
            return m

        out = np.zeros((dim, dim), dtype=complex)
        for term, coeff in self.terms.items():
            m = np.eye(dim, dtype=complex)
            for q, d in term:
                m = m @ ladder(q, d)
            out += coeff * m
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.terms:
            return "FermionOperator(0)"
        parts = []
        for t, c in list(self.terms.items())[:4]:
            label = " ".join(f"a{'†' if d else ''}_{q}" for q, d in t) or "1"
            parts.append(f"({c:.4g}) {label}")
        more = f" ... +{len(self.terms) - 4} terms" if len(self.terms) > 4 else ""
        return "FermionOperator(" + " + ".join(parts) + more + ")"


def _normal_order_term(term: FTerm, coeff: complex):
    """Bubble a single product into normal order, yielding (term, coeff)
    pieces.  Swapping adjacent distinct operators flips the sign; a
    ``a_p a†_p`` swap additionally spawns the identity-contraction term.
    Repeated creations (or annihilations) of the same orbital vanish.
    """
    stack = [(list(term), coeff)]
    while stack:
        ops, c = stack.pop()
        changed = True
        vanished = False
        while changed:
            changed = False
            for k in range(len(ops) - 1):
                (q1, d1), (q2, d2) = ops[k], ops[k + 1]
                if not d1 and d2:  # annihilation left of creation: swap
                    if q1 == q2:
                        # a_p a†_p = 1 - a†_p a_p
                        rest = ops[:k] + ops[k + 2 :]
                        stack.append((rest, c))
                        ops[k], ops[k + 1] = (q2, d2), (q1, d1)
                        c = -c
                    else:
                        ops[k], ops[k + 1] = ops[k + 1], ops[k]
                        c = -c
                    changed = True
                    break
                if d1 == d2:
                    if q1 == q2:  # a†a† or aa of same orbital -> 0
                        vanished = True
                        break
                    if q1 < q2:  # enforce descending order within block
                        ops[k], ops[k + 1] = ops[k + 1], ops[k]
                        c = -c
                        changed = True
                        break
            if vanished:
                break
        if not vanished:
            yield tuple(ops), c
