"""Parity transform (fermion modes -> qubits).

The third encoding named in paper §II-A ("Jordan–Wigner, Bravyi–Kitaev,
or parity techniques").  Qubit ``j`` stores the parity of modes
``0..j``, the exact dual of JW: occupation lookup needs two qubits
(``Z_{j-1} Z_j``), but parity lookup is local, so the *update* string
runs rightward:

    a†_j = (Z_{j-1} X_j - i Y_j) / 2 ⊗ X_{j+1} ... X_{n-1}
    a_j  = (Z_{j-1} X_j + i Y_j) / 2 ⊗ X_{j+1} ... X_{n-1}

with ``Z_{-1} = I``.  Validated against the canonical anticommutation
relations and JW isospectrality in the tests.
"""

from __future__ import annotations

from functools import lru_cache

from repro.chemistry.fermion import FermionOperator
from repro.chemistry.qubit_operator import QubitOperator


@lru_cache(maxsize=4096)
def parity_ladder(j: int, dagger: bool, n: int) -> QubitOperator:
    """Parity-encoding image of ``a_j`` / ``a†_j`` over ``n`` modes."""
    if not 0 <= j < n:
        raise ValueError(f"mode {j} out of range for n={n}")
    update = tuple((k, "X") for k in range(j + 1, n))
    x_term = tuple(sorted(((j, "X"),) + update))
    if j > 0:
        x_term = tuple(sorted(((j - 1, "Z"),) + x_term))
    y_term = tuple(sorted(((j, "Y"),) + update))
    out = QubitOperator(x_term, 0.5)
    out += QubitOperator(y_term, -0.5j if dagger else 0.5j)
    return out


def parity_transform(op: FermionOperator, n_modes: int | None = None) -> QubitOperator:
    """Parity transform of an arbitrary :class:`FermionOperator`."""
    if n_modes is None:
        n_modes = op.max_orbital() + 1
    result = QubitOperator.zero()
    for term, coeff in op.terms.items():
        prod = QubitOperator.identity(coeff)
        for q, d in term:
            prod = prod * parity_ladder(q, d, n_modes)
        result += prod
    return result.compress()
