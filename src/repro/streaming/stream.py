"""Edge streams for the semi-streaming setting (ACK's model, paper §III).

A *stream* delivers the graph as batches of ``(u, v)`` endpoint arrays
and may be replayed (one fresh pass per Picasso iteration — ACK's
algorithm is single-pass per coloring attempt; the paper's iterative
variant replays).  Implementations:

- :class:`EdgeListStream` — in-memory arrays, batched (tests, adapters);
- :class:`FileEdgeStream` — a text edge list on disk, never fully
  loaded: the honest semi-streaming regime for explicit graphs;
- :class:`PauliPairStream` — complement edges generated on the fly from
  a Pauli set, bridging the quantum workloads into the stream world.
"""

from __future__ import annotations

import os
from collections.abc import Iterator

import numpy as np

from repro.pauli.strings import PauliSet
from repro.util.chunking import iter_pair_chunks

Batch = tuple[np.ndarray, np.ndarray]


class EdgeListStream:
    """Replayable stream over in-memory endpoint arrays."""

    def __init__(self, u: np.ndarray, v: np.ndarray, n: int, batch: int = 1 << 16):
        self.u = np.asarray(u, dtype=np.int64)
        self.v = np.asarray(v, dtype=np.int64)
        if self.u.shape != self.v.shape:
            raise ValueError("endpoint arrays differ in length")
        self.n = n
        self.batch = batch

    def __iter__(self) -> Iterator[Batch]:
        for s in range(0, len(self.u), self.batch):
            yield self.u[s : s + self.batch], self.v[s : s + self.batch]


class FileEdgeStream:
    """Replayable stream over a ``u v`` text file (``#`` comments).

    Only ``batch`` edges are resident at any time.
    """

    def __init__(self, path: str | os.PathLike, n: int, batch: int = 1 << 16):
        self.path = str(path)
        self.n = n
        self.batch = batch

    def __iter__(self) -> Iterator[Batch]:
        us: list[int] = []
        vs: list[int] = []
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                a, b = line.split()[:2]
                us.append(int(a))
                vs.append(int(b))
                if len(us) >= self.batch:
                    yield np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64)
                    us, vs = [], []
        if us:
            yield np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64)


class PauliPairStream:
    """Stream the complement ("commute") edges of a Pauli set.

    Nothing quadratic is stored; each replay re-derives the edges from
    the 3-bit encoding, exactly like the oracle path, but exposed in
    stream form so the semi-streaming colorer can treat explicit files
    and quantum workloads uniformly.
    """

    def __init__(self, pauli_set: PauliSet, batch: int = 1 << 18):
        self.pauli_set = pauli_set
        self.n = pauli_set.n
        self.batch = batch
        self._oracle = pauli_set.oracle()

    def __iter__(self) -> Iterator[Batch]:
        for i, j in iter_pair_chunks(self.n, self.batch):
            mask = self._oracle.commute_edges(i, j).astype(bool)
            if mask.any():
                yield i[mask], j[mask]


def save_edge_stream(graph, path: str | os.PathLike) -> None:
    """Dump a :class:`repro.graphs.CSRGraph` as a ``u v`` text file."""
    e = graph.edges()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# n={graph.n_vertices} m={graph.n_edges}\n")
        for a, b in e.tolist():
            fh.write(f"{a} {b}\n")
