"""Semi-streaming substrate (ACK's model, paper §III lineage)."""

from repro.streaming.semi_streaming import semi_streaming_color
from repro.streaming.stream import (
    EdgeListStream,
    FileEdgeStream,
    PauliPairStream,
    save_edge_stream,
)

__all__ = [
    "semi_streaming_color",
    "EdgeListStream",
    "FileEdgeStream",
    "PauliPairStream",
    "save_edge_stream",
]
