"""Semi-streaming Picasso: one pass over the edge stream per iteration.

ACK's sublinear coloring (§III) lives in the semi-streaming model: the
algorithm may not store the graph, only o(|E|) state, and reads edges
as a stream.  Picasso's iterative variant maps onto that model
directly — per iteration it needs exactly one pass, retaining only the
edges whose endpoints (a) are still uncolored and (b) share a candidate
color.  This module implements that path over any replayable
:mod:`repro.streaming.stream` source.

Resident state per pass: candidate-color bitsets (``O(n P / 64)``
words) plus the conflict edges (``O(n log^3 n)`` w.h.p. by Lemma 2) —
never the stream itself.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.coloring.base import ColoringResult
from repro.coloring.engine import get_engine
from repro.core.palette import assign_color_lists
from repro.core.params import PicassoParams
from repro.device.kernels import lists_intersect_kernel
from repro.graphs.csr import from_edge_list
from repro.graphs.ops import induced_subgraph
from repro.resilience.supervisor import supervised_executor
from repro.util.rng import as_generator


def semi_streaming_color(
    stream,
    params: PicassoParams | None = None,
    seed: int | np.random.Generator | None = None,
) -> ColoringResult:
    """Color a streamed graph with the iterative palette scheme.

    Parameters
    ----------
    stream:
        Replayable edge stream exposing ``n`` and ``__iter__`` yielding
        ``(u, v)`` batches (see :mod:`repro.streaming.stream`).
    params, seed:
        As for :class:`repro.core.Picasso`.

    Returns
    -------
    :class:`ColoringResult` whose stats record passes and the maximum
    per-pass retained (conflict) edge count — the semi-streaming memory
    certificate.
    """
    params = params or PicassoParams()
    rng = as_generator(seed)
    # Same pluggable Algorithm 2 seam as the in-memory driver: the
    # conflict coloring of each pass goes through the engine registry,
    # and parallel engines receive the run's executor — the default
    # params resolve to the in-process serial backend, but
    # ``n_workers``/``hosts`` put the per-pass conflict coloring on a
    # pool or on multi-host worker agents exactly as in the in-memory
    # driver (one persistent backend for all passes).
    color_engine = get_engine(
        params.resolved_color_engine(), **params.color_engine_knobs()
    )
    # ``failover``/``max_retries`` wrap the backend in the
    # retry/failover supervisor, exactly as in the in-memory driver;
    # without them this is plain make_executor.  Spec-created either
    # way, so this function owns and closes it.
    executor = supervised_executor(
        params.executor, params.n_workers, pin=params.pin_workers,
        hosts=params.hosts, transport=params.transport,
        failover=params.failover, max_retries=params.max_retries,
    )
    try:
        return _semi_streaming_color(stream, params, rng, color_engine, executor)
    finally:
        executor.close()


def _semi_streaming_color(stream, params, rng, color_engine, executor):
    """The pass loop, against an already-resolved executor."""
    n = stream.n
    t0 = telemetry.clock()
    colors = np.full(n, -1, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    base_color = 0
    palette_fraction = params.palette_fraction
    passes = 0
    max_retained = 0

    for _ in range(params.max_iterations):
        n_active = int(active.sum())
        if n_active == 0:
            break
        # Local ids for the active subproblem.
        local_of = np.full(n, -1, dtype=np.int64)
        active_ids = np.nonzero(active)[0]
        local_of[active_ids] = np.arange(n_active)

        palette = max(params.min_palette, round(palette_fraction * n_active))
        raw_list = max(1, round(params.alpha * np.log(n_active))) if n_active > 1 else 1
        list_size = min(raw_list, palette)
        col_lists, colmasks = assign_color_lists(n_active, palette, list_size, rng)

        # Single pass: retain only live conflicted edges.
        passes += 1
        keep_u: list[np.ndarray] = []
        keep_v: list[np.ndarray] = []
        retained = 0
        for u, v in stream:
            live = active[u] & active[v]
            if not live.any():
                continue
            lu = local_of[u[live]]
            lv = local_of[v[live]]
            shared = lists_intersect_kernel(colmasks, lu, lv).astype(bool)
            if shared.any():
                keep_u.append(lu[shared])
                keep_v.append(lv[shared])
                retained += int(shared.sum())
        max_retained = max(max_retained, retained)
        cu = np.concatenate(keep_u) if keep_u else np.empty(0, dtype=np.int64)
        cv = np.concatenate(keep_v) if keep_v else np.empty(0, dtype=np.int64)
        gc = from_edge_list(cu, cv, n_active, dedupe=True)

        # Color: unconflicted free, conflicted via Algorithm 2.
        local_colors = np.full(n_active, -1, dtype=np.int64)
        degrees = gc.degree()
        unconflicted = np.nonzero(degrees == 0)[0]
        local_colors[unconflicted] = col_lists[unconflicted, 0]
        conflicted = np.nonzero(degrees > 0)[0]
        if len(conflicted):
            sub_gc, _ = induced_subgraph(gc, conflicted)
            outcome = color_engine.color(
                sub_gc, col_lists[conflicted], rng, executor=executor
            )
            local_colors[conflicted] = outcome.colors

        colored = np.nonzero(local_colors >= 0)[0]
        colors[active_ids[colored]] = base_color + local_colors[colored]
        base_color += palette
        if len(colored) == 0:
            palette_fraction = min(1.0, palette_fraction * params.grow_on_stall)
        active[active_ids[colored]] = False
    else:
        raise RuntimeError(
            f"semi_streaming_color did not converge in {params.max_iterations} passes"
        )

    return ColoringResult(
        colors=colors,
        algorithm="picasso-semistream",
        elapsed_s=telemetry.clock() - t0,
        engine=color_engine.name,
        n_rounds=passes,
        stats={"passes": passes, "max_retained_edges": max_retained},
    )
