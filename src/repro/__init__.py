"""Picasso: memory-efficient palette-based graph coloring.

Reproduction of *Picasso: Memory-Efficient Graph Coloring Using
Palettes With Applications in Quantum Computing* (IPDPS 2024,
arXiv:2401.06713).

Quickstart
----------
>>> from repro import Picasso, hn_pauli_set
>>> pauli_set = hn_pauli_set(4, 1, "sto3g")     # H4 chain, sto-3g
>>> result = Picasso(seed=0).color(pauli_set)   # partition into unitaries
>>> result.n_colors < pauli_set.n
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.chemistry import hn_pauli_set, hydrogen_cluster, molecular_pauli_set
from repro.coloring import (
    ColoringResult,
    greedy_coloring,
    jones_plassmann_ldf,
    speculative_coloring,
)
from repro.core import (
    Picasso,
    PicassoParams,
    PicassoResult,
    aggressive_params,
    normal_params,
    picasso_color,
)
from repro.device import DeviceOutOfMemory, DeviceSim
from repro.graphs import CSRGraph, anticommute_graph, complement_graph
from repro.pauli import PauliSet, random_pauli_set

__version__ = "1.0.0"

__all__ = [
    "hn_pauli_set",
    "hydrogen_cluster",
    "molecular_pauli_set",
    "ColoringResult",
    "greedy_coloring",
    "jones_plassmann_ldf",
    "speculative_coloring",
    "Picasso",
    "PicassoParams",
    "PicassoResult",
    "aggressive_params",
    "normal_params",
    "picasso_color",
    "DeviceOutOfMemory",
    "DeviceSim",
    "CSRGraph",
    "anticommute_graph",
    "complement_graph",
    "PauliSet",
    "random_pauli_set",
    "__version__",
]
