"""Dataset registry: the Table II molecule suite at reproduction scale.

The paper evaluates on Hn clusters (n = 4..10; 1D/2D/3D; sto3g / 631g /
6311g) spanning 8.7k to 2.1M Pauli strings.  This registry provides the
same family, with the synthetic-integral pipeline keeping generation
offline-friendly.  Sizes here run ~25 to ~27k strings; the small /
medium / large tiers mirror the paper's classification by edge count.

Pauli sets are generated lazily and cached in-process — the benchmarks
sweep the suite repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.chemistry.hamiltonian import hn_pauli_set
from repro.pauli.strings import PauliSet


@dataclass(frozen=True)
class MoleculeSpec:
    """One suite entry: Hn geometry + basis and its size tier."""

    n_atoms: int
    dimensionality: int
    basis: str
    tier: str  # "small" | "medium" | "large"

    @property
    def name(self) -> str:
        return f"H{self.n_atoms}_{self.dimensionality}D_{self.basis}"


#: The suite, ordered roughly by problem size (paper Table II analog).
MOLECULE_SUITE: tuple[MoleculeSpec, ...] = (
    MoleculeSpec(2, 1, "sto3g", "small"),
    MoleculeSpec(4, 3, "sto3g", "small"),
    MoleculeSpec(4, 2, "sto3g", "small"),
    MoleculeSpec(4, 1, "sto3g", "small"),
    MoleculeSpec(6, 3, "sto3g", "small"),
    MoleculeSpec(6, 2, "sto3g", "small"),
    MoleculeSpec(6, 1, "sto3g", "small"),
    MoleculeSpec(8, 3, "sto3g", "medium"),
    MoleculeSpec(8, 2, "sto3g", "medium"),
    MoleculeSpec(8, 1, "sto3g", "medium"),
    MoleculeSpec(4, 2, "631g", "medium"),
    MoleculeSpec(4, 1, "631g", "medium"),
    MoleculeSpec(6, 1, "631g", "large"),
)


def suite_specs(tier: str | None = None) -> list[MoleculeSpec]:
    """Specs, optionally filtered to one tier."""
    if tier is None:
        return list(MOLECULE_SUITE)
    if tier not in ("small", "medium", "large"):
        raise ValueError(f"unknown tier {tier!r}")
    return [s for s in MOLECULE_SUITE if s.tier == tier]


@lru_cache(maxsize=32)
def load_molecule(name: str) -> PauliSet:
    """Generate (or fetch from cache) a suite entry by name."""
    for spec in MOLECULE_SUITE:
        if spec.name == name:
            return hn_pauli_set(spec.n_atoms, spec.dimensionality, spec.basis)
    raise KeyError(
        f"unknown molecule {name!r}; known: {[s.name for s in MOLECULE_SUITE]}"
    )


def molecule_suite(tier: str | None = "small") -> dict[str, PauliSet]:
    """Load a whole tier (default small) as ``{name: PauliSet}``."""
    return {s.name: load_molecule(s.name) for s in suite_specs(tier)}
