#!/usr/bin/env python3
"""Comparing the three Pauli-grouping relations of paper §III.

Unitary partitioning (anticommuting cliques — the paper's target),
general commutativity (GC) and qubit-wise commutativity (QWC) are all
clique-partitioning problems; Picasso solves each by coloring the
streamed complement of the corresponding compatibility graph.

The §III claim this reproduces: grouping typically shrinks the term
count by a healthy factor, with GC the loosest relation (fewest groups)
and QWC the strictest (most groups, but measurable without extra
gates).

Run:  python examples/measurement_grouping.py
"""

from repro.chemistry import hn_pauli_set
from repro.coloring import available_engines
from repro.core import aggressive_params
from repro.pauli import group_pauli_set, validate_grouping


def main() -> None:
    for args in ((3, 1, "sto3g"), (4, 1, "sto3g")):
        ps = hn_pauli_set(*args)
        print(f"\n{ps.name}: {ps.n} Pauli strings over {ps.n_qubits} qubits")
        print(f"{'relation':<14} {'groups':>7} {'reduction':>10}")
        for relation in ("qubitwise", "anticommute", "commute"):
            grouping = group_pauli_set(
                ps, relation, params=aggressive_params(), seed=0
            )
            assert validate_grouping(ps, grouping)
            print(
                f"{relation:<14} {grouping.n_colors:>7} "
                f"{grouping.reduction:>9.1f}x"
            )

    # Algorithm 2 is pluggable: any registry engine slots into the same
    # grouping pipeline via PicassoParams(color_engine=...).  The
    # round-synchronous parallel-list engine trades a few percent of
    # group quality for data-parallel rounds.
    ps = hn_pauli_set(4, 1, "sto3g")
    print(f"\ncoloring engines on {ps.name} (anticommute):")
    print(f"{'engine':<16} {'groups':>7} {'reduction':>10}")
    for engine in available_engines():
        grouping = group_pauli_set(
            ps, "anticommute",
            params=aggressive_params(color_engine=engine), seed=0,
        )
        assert validate_grouping(ps, grouping)
        print(
            f"{engine:<16} {grouping.n_colors:>7} "
            f"{grouping.reduction:>9.1f}x"
        )
    print(
        "\nGC admits the largest groups (any commuting pair), QWC the "
        "smallest\n(single-basis measurable), with unitary partitioning "
        "in between —\nthe §III trade-off between group count and "
        "measurement overhead."
    )


if __name__ == "__main__":
    main()
