#!/usr/bin/env python3
"""Predicting Picasso's parameters with the §VI ML methodology.

1. sweep (P', alpha) over training molecules and harvest the Eq. 7
   optima per trade-off weight beta;
2. train ridge / lasso / tree / random-forest regressors;
3. compare held-out MAPE and R² (the paper finds the forest best);
4. use the forest to pick parameters for an unseen molecule and run
   Picasso with them.

Run:  python examples/parameter_prediction.py   (takes ~1 minute)
"""

import numpy as np

from repro import Picasso
from repro.core.sources import PauliComplementSource
from repro.graphs import complement_edge_count
from repro.pauli import random_pauli_set_density
from repro.predict import (
    PaletteParamsPredictor,
    build_dataset,
    compare_models,
)

GRID = dict(
    palette_percents=(2.5, 5.0, 10.0, 15.0),
    alphas=(1.0, 2.0, 4.0),
    betas=(0.2, 0.5, 0.8),
)


def main() -> None:
    # Training molecules: structured random Pauli families of graded
    # size (fast stand-ins for the Hn suite; swap in
    # repro.datasets.molecule_suite() for the full pipeline).
    train_sets = [
        random_pauli_set_density(120 + 90 * k, 8, identity_fraction=0.3,
                                 seed=k, name=f"train{k}")
        for k in range(5)
    ]
    test_sets = [
        random_pauli_set_density(200 + 130 * k, 8, identity_fraction=0.3,
                                 seed=100 + k, name=f"test{k}")
        for k in range(2)
    ]

    print("Sweeping the (P', alpha) grid over 7 inputs ...")
    dataset = build_dataset(train_sets + test_sets, seed=0, **GRID)
    train, test = dataset.split_by_input({ps.name for ps in test_sets})
    print(f"dataset: {len(train)} train rows, {len(test)} test rows")

    print("\nHeld-out metrics per model (paper §VI: nonlinear wins):")
    results = compare_models(train, test, seed=0)
    for name, metrics in results.items():
        print(f"  {name:<8} MAPE={metrics['mape']:.3f}  R2={metrics['r2']:+.3f}")

    # Deploy the forest on a brand-new molecule.
    predictor = PaletteParamsPredictor(model="forest", seed=0).fit(train)
    fresh = random_pauli_set_density(500, 8, identity_fraction=0.3, seed=999)
    n_edges = complement_edge_count(fresh)
    beta = 0.7  # favour few colors over low memory
    params = predictor.predict_params(beta, fresh.n, n_edges)
    print(
        f"\nPredicted for new input (|V|={fresh.n}, |E|={n_edges}, beta={beta}): "
        f"P'={100 * params.palette_fraction:.1f}%  alpha={params.alpha:.2f}"
    )
    result = Picasso(params=params, seed=0).color(fresh)
    assert PauliComplementSource(fresh).validate(result.colors)
    print(
        f"Picasso with predicted parameters: {result.n_colors} colors "
        f"({result.color_percentage():.1f}% of |V|), "
        f"max |Ec| = {result.max_conflict_edges}, "
        f"{result.n_iterations} iterations"
    )


if __name__ == "__main__":
    main()
