#!/usr/bin/env python3
"""Memory-budgeted coloring of a large dense input (paper §VII-A2 story).

The paper's largest inputs only fit the 40 GB A100 after *tightening*
the parameters (P = 12.5%, alpha dropped from 2 to 1).  This example
replays that episode on the device simulator:

1. a dense Pauli workload is colored with default parameters against a
   deliberately small device budget -> the conflict COO buffer
   overflows (DeviceOutOfMemory), exactly like the paper's largest
   instance;
2. the run is retried with conservative parameters (smaller alpha,
   larger palette) predicted to fit by the Lemma 2 edge estimate;
3. it completes, and we report the admissible conflict-edge fraction —
   the dashed feasibility line of Fig. 2.

Run:  python examples/streaming_large_graph.py
"""

from repro import DeviceOutOfMemory, DeviceSim, Picasso, PicassoParams
from repro.core.analysis import expected_conflict_edges
from repro.core.sources import PauliComplementSource
from repro.graphs import complement_edge_count
from repro.memory import bytes_human
from repro.pauli import random_pauli_set_density

BUDGET = 2 * 1024 * 1024  # a deliberately cramped 2 MB "GPU"


def main() -> None:
    workload = random_pauli_set_density(
        1200, 10, identity_fraction=0.35, seed=7, name="dense1200"
    )
    n_edges = complement_edge_count(workload)
    print(
        f"workload: {workload.n} Pauli strings, {n_edges} complement edges "
        f"(~{200 * n_edges / (workload.n * (workload.n - 1)):.0f}% dense)"
    )
    print(f"device budget: {bytes_human(BUDGET)}\n")

    # Attempt 1: generous lists (alpha = 3) -> too many conflict edges.
    eager = PicassoParams(palette_fraction=0.125, alpha=3.0)
    device = DeviceSim(budget_bytes=BUDGET)
    print("attempt 1: P = 12.5%, alpha = 3.0")
    try:
        Picasso(params=eager, device=device, seed=0).color(workload)
        print("  unexpectedly fit!")
    except DeviceOutOfMemory as exc:
        print(f"  DeviceOutOfMemory: {exc}")

    # Attempt 2: consult the Lemma 2 estimate and tighten alpha (the
    # paper's move for its >1-trillion-edge inputs: alpha 2 -> 1).
    conservative = PicassoParams(palette_fraction=0.125, alpha=1.0)
    p = conservative.palette_size(workload.n)
    l = conservative.list_size(workload.n)
    est = expected_conflict_edges(n_edges, p, l)
    print(
        f"\nattempt 2: P = 12.5%, alpha = 1.0 "
        f"(Lemma 2 estimate: ~{est:,.0f} conflict edges)"
    )
    device = DeviceSim(budget_bytes=BUDGET)
    result = Picasso(params=conservative, device=device, seed=0).color(workload)
    assert PauliComplementSource(workload).validate(result.colors)
    frac = 100.0 * result.max_conflict_edges / n_edges
    print(
        f"  completed: {result.n_colors} colors in {result.n_iterations} "
        f"iterations\n  max |Ec| = {result.max_conflict_edges:,} "
        f"({frac:.1f}% of |E|) — device peak {bytes_human(device.peak_bytes)} "
        f"of {bytes_human(BUDGET)}"
    )
    print(
        "\nThis is Fig. 2's regime: for fixed parameters the conflict-edge\n"
        "fraction must shrink as inputs grow; parameter tightening keeps\n"
        "the build inside the accelerator's memory."
    )


if __name__ == "__main__":
    main()
