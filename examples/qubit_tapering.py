#!/usr/bin/env python3
"""Qubit tapering + unitary partitioning — the paper's combined pipeline.

The conclusion of the Picasso paper notes the same machinery "can be
adeptly employed in qubit tapering, thereby reducing the effective
number of qubits required for a given problem."  This example runs both
reductions back to back on H3 (6 qubits):

1. find the Z2 symmetries of the Hamiltonian and taper qubits (each
   symmetry removes one);
2. export the *tapered* Hamiltonian's Pauli strings and run Picasso's
   clique partitioning on them;
3. report the compound compression: fewer qubits x fewer unitaries.

Run:  python examples/qubit_tapering.py
"""


from repro import Picasso, aggressive_params
from repro.chemistry import (
    find_z2_symmetries,
    hydrogen_cluster,
    molecular_qubit_operator,
    taper_qubits,
)
from repro.core import partition_from_coloring
from repro.pauli import PauliSet


def main() -> None:
    geometry = hydrogen_cluster(n_atoms=3, dimensionality=1, basis="sto3g")
    n_qubits = geometry.n_spin_orbitals
    qop = molecular_qubit_operator(geometry)
    print(f"{geometry.name}: {n_qubits} qubits, {qop.n_terms} Pauli terms")

    # --- stage 1: tapering -------------------------------------------
    generators = find_z2_symmetries(qop, n_qubits)
    print(f"\nZ2 symmetries found: {len(generators)}")
    for g in generators:
        term = next(iter(g.terms))
        print("  " + " ".join(f"{p}{q}" for q, p in term))
    result = taper_qubits(qop, n_qubits, generators=generators)
    print(
        f"tapered {n_qubits} -> {result.n_qubits_after} qubits "
        f"(sector {result.sector}); {result.operator.n_terms} terms remain"
    )

    # --- stage 2: unitary partitioning on the tapered problem --------
    chars, coeffs = result.operator.to_char_matrix(result.n_qubits_after)
    tapered_set = PauliSet(chars, coeffs.real, name="tapered").dedupe().drop_identity()
    coloring = Picasso(params=aggressive_params(), seed=0).color(tapered_set)
    partition = partition_from_coloring(tapered_set, coloring)
    assert partition.validate()
    s = partition.summary()
    print(
        f"\nPicasso partition of the tapered Hamiltonian: "
        f"{s['n_pauli']} strings -> {s['n_unitaries']} unitaries "
        f"({s['compression_ratio']:.1f}x, largest clique {s['max_group']})"
    )

    # --- compound effect ---------------------------------------------
    print(
        f"\ncompound reduction: {n_qubits} qubits x {qop.n_terms} terms"
        f"  ->  {result.n_qubits_after} qubits x {s['n_unitaries']} unitaries"
    )


if __name__ == "__main__":
    main()
