#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 1 walkthrough on H2 / sto-3g.

Pipeline: molecule -> Pauli strings -> (implicit) anticommutation graph
-> Picasso coloring of the complement -> clique partition = compact set
of unitaries (Eq. 1).

Run:  python examples/quickstart.py
"""

from repro import Picasso, aggressive_params
from repro.chemistry import hydrogen_cluster, molecular_pauli_set
from repro.core.sources import PauliComplementSource
from repro.graphs import anticommute_edge_count


def main() -> None:
    # 1. H2 with the minimal sto-3g basis: N = 4 qubits (paper Fig. 1).
    geometry = hydrogen_cluster(n_atoms=2, dimensionality=1, basis="sto3g")
    pauli_set = molecular_pauli_set(geometry, drop_identity=False)
    print(f"Molecule {geometry.name}: {pauli_set.n_qubits} qubits, "
          f"{pauli_set.n} Pauli strings")
    for k, s in enumerate(pauli_set.to_strings()):
        print(f"  P{k}: {s}")

    # 2. The anticommutation graph G is never built; we only count its
    #    edges for reporting (Table II's "# of edges" column).
    m = anticommute_edge_count(pauli_set)
    print(f"\nAnticommutation graph: {pauli_set.n} vertices, {m} edges "
          "(computed by streaming, never stored)")

    # 3. Color the complement graph with Picasso. Aggressive parameters
    #    chase the fewest unitaries, as Fig. 1 does.
    result = Picasso(params=aggressive_params(), seed=0).color(pauli_set)
    assert PauliComplementSource(pauli_set).validate(result.colors)

    # 4. Each color class is a pairwise-anticommuting clique -> one unitary.
    classes = result.color_classes()
    print(f"\nPicasso partitioned {pauli_set.n} Pauli strings into "
          f"{result.n_colors} unitaries "
          f"({result.color_percentage():.0f}% of the input size) "
          f"in {result.n_iterations} iteration(s):")
    strings = pauli_set.to_strings()
    for u, members in enumerate(classes):
        labels = ", ".join(strings[v] for v in members)
        print(f"  U{u}: {{{labels}}}")


if __name__ == "__main__":
    main()
