#!/usr/bin/env python3
"""Unitary partitioning across the Hn suite: Picasso vs the baselines.

For each small-tier molecule this reproduces the paper's §VII-A
comparison in miniature: coloring quality (final unitary count) and
memory residency of Picasso's Normal/Aggressive modes against greedy
orderings (ColPack analog) on the explicit complement graph.

Run:  python examples/molecule_partitioning.py
"""

from repro import Picasso, aggressive_params, normal_params
from repro.coloring import greedy_coloring
from repro.datasets import molecule_suite
from repro.graphs import complement_graph
from repro.memory import bytes_human


def main() -> None:
    suite = molecule_suite("small")
    header = (
        f"{'molecule':<16} {'|V|':>6} {'DLF':>6} {'LF':>6} "
        f"{'Pic-N':>6} {'Pic-A':>6} {'mem graph':>10} {'mem Pic-N':>10}"
    )
    print(header)
    print("-" * len(header))
    for name, ps in suite.items():
        if ps.n < 50:  # H2 is too tiny to compare meaningfully
            continue
        g = complement_graph(ps)
        dlf = greedy_coloring(g, "dlf")
        lf = greedy_coloring(g, "lf")
        pic_n = Picasso(params=normal_params(), seed=0).color(ps)
        pic_a = Picasso(params=aggressive_params(), seed=0).color(ps)
        print(
            f"{name:<16} {ps.n:>6} {dlf.n_colors:>6} {lf.n_colors:>6} "
            f"{pic_n.n_colors:>6} {pic_a.n_colors:>6} "
            f"{bytes_human(dlf.peak_bytes):>10} "
            f"{bytes_human(pic_n.peak_bytes):>10}"
        )
    print(
        "\nReading guide (paper Table III/IV shapes): aggressive Picasso "
        "approaches DLF quality\nwhile normal Picasso minimizes resident "
        "memory; both beat LF on quality for most inputs."
    )


if __name__ == "__main__":
    main()
